//! JSON (de)serialization of the replay-scaling artifact — the
//! `SCALING_PR<k>.json` document the CI scaling-gate regenerates and diffs
//! against its committed baseline.
//!
//! Schema:
//!
//! ```json
//! {
//!   "schema": "carve-scaling-report-v1",
//!   "pr": 8,
//!   "ranks": [256.0, 1024.0, 4096.0, 16384.0, 28672.0],
//!   "reference_model": {
//!     "t_leaf": 1e-6, "t_copy": 5e-9,
//!     "alpha": 1e-6, "beta": 1e-10, "gamma": 5e-7
//!   },
//!   "calibrated_model": { "...": "same shape, machine-dependent, optional" },
//!   "cases": [
//!     {
//!       "name": "channel", "order": 1, "kind": "strong",
//!       "efficiency_floor": 0.25,
//!       "points": [
//!         {
//!           "ranks": 256, "elems": 601064, "dofs": 615327,
//!           "elems_per_rank_min": 2348, "elems_per_rank_max": 2348,
//!           "owned_nodes_max": 2500, "ghost_nodes_max": 400,
//!           "ghost_bytes_max": 3200, "send_bytes_max": 3300,
//!           "neighbors_max": 9,
//!           "digest": "f1d2d2f924e986ac",
//!           "t_model": 3.1e-3, "efficiency": 1.0
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! Every count is derived from the *exact* per-rank partition replay
//! (`carve-bench::analyze_partition`); `digest` is an order-fixed FNV fold
//! of the full per-rank load arrays (hex string: JSON numbers are f64 and
//! cannot carry 64 bits losslessly), so the committed artifact pins the
//! complete per-rank structure, not just the summaries. `t_model` and
//! `efficiency` come from the pinned `reference_model`, which makes them
//! machine-independent and bit-reproducible; `calibrated_model` records
//! this box's measured constants for information only and is ignored by
//! the gate.

use crate::json::Json;

/// Schema tag stamped into every serialized scaling report.
pub const SCALING_REPORT_SCHEMA: &str = "carve-scaling-report-v1";

/// α-β-γ machine-model constants as serialized in the report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelConstants {
    pub t_leaf: f64,
    pub t_copy: f64,
    pub alpha: f64,
    pub beta: f64,
    pub gamma: f64,
}

/// One rank count of one scaling series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    pub ranks: u64,
    /// Global mesh structure at this point (constant along a strong series,
    /// growing along a weak one).
    pub elems: u64,
    pub dofs: u64,
    /// Exact per-rank load envelope from the partition replay.
    pub elems_per_rank_min: u64,
    pub elems_per_rank_max: u64,
    pub owned_nodes_max: u64,
    pub ghost_nodes_max: u64,
    pub ghost_bytes_max: u64,
    pub send_bytes_max: u64,
    pub neighbors_max: u64,
    /// Order-fixed FNV-1a fold of the full per-rank load array.
    pub digest: u64,
    /// Modeled MATVEC wall time under the pinned reference model.
    pub t_model: f64,
    /// Strong: cost ratio vs the first point; weak: per-element cost ratio.
    pub efficiency: f64,
}

/// One (case, order, strong|weak) efficiency curve.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingCase {
    pub name: String,
    pub order: u64,
    /// `"strong"` or `"weak"`.
    pub kind: String,
    /// Gate floor: regenerated efficiencies must not drop below this.
    pub efficiency_floor: f64,
    pub points: Vec<ScalingPoint>,
}

/// A whole replay-scaling artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingReport {
    pub pr: u64,
    pub ranks: Vec<u64>,
    pub reference_model: ModelConstants,
    /// Machine-dependent constants measured on the generating box; absent
    /// in gate-mode regeneration.
    pub calibrated_model: Option<ModelConstants>,
    pub cases: Vec<ScalingCase>,
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

fn hex64(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

fn model_to_json(m: &ModelConstants) -> Json {
    Json::Obj(vec![
        ("t_leaf".into(), Json::Num(m.t_leaf)),
        ("t_copy".into(), Json::Num(m.t_copy)),
        ("alpha".into(), Json::Num(m.alpha)),
        ("beta".into(), Json::Num(m.beta)),
        ("gamma".into(), Json::Num(m.gamma)),
    ])
}

/// Encodes a report as a self-describing JSON object.
pub fn scaling_report_to_json(r: &ScalingReport) -> Json {
    let cases = r
        .cases
        .iter()
        .map(|c| {
            let points = c
                .points
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("ranks".into(), num(p.ranks)),
                        ("elems".into(), num(p.elems)),
                        ("dofs".into(), num(p.dofs)),
                        ("elems_per_rank_min".into(), num(p.elems_per_rank_min)),
                        ("elems_per_rank_max".into(), num(p.elems_per_rank_max)),
                        ("owned_nodes_max".into(), num(p.owned_nodes_max)),
                        ("ghost_nodes_max".into(), num(p.ghost_nodes_max)),
                        ("ghost_bytes_max".into(), num(p.ghost_bytes_max)),
                        ("send_bytes_max".into(), num(p.send_bytes_max)),
                        ("neighbors_max".into(), num(p.neighbors_max)),
                        ("digest".into(), hex64(p.digest)),
                        ("t_model".into(), Json::Num(p.t_model)),
                        ("efficiency".into(), Json::Num(p.efficiency)),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("name".into(), Json::Str(c.name.clone())),
                ("order".into(), num(c.order)),
                ("kind".into(), Json::Str(c.kind.clone())),
                ("efficiency_floor".into(), Json::Num(c.efficiency_floor)),
                ("points".into(), Json::Arr(points)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("schema".into(), Json::Str(SCALING_REPORT_SCHEMA.into())),
        ("pr".into(), num(r.pr)),
        (
            "ranks".into(),
            Json::Arr(r.ranks.iter().map(|&p| num(p)).collect()),
        ),
        ("reference_model".into(), model_to_json(&r.reference_model)),
    ];
    if let Some(cal) = &r.calibrated_model {
        fields.push(("calibrated_model".into(), model_to_json(cal)));
    }
    fields.push(("cases".into(), Json::Arr(cases)));
    Json::Obj(fields)
}

fn get_f64(j: &Json, key: &str, what: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what}: missing or non-numeric '{key}'"))
}

fn get_u64(j: &Json, key: &str, what: &str) -> Result<u64, String> {
    let v = get_f64(j, key, what)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("{what}: '{key}' = {v} is not a u64"));
    }
    Ok(v as u64)
}

fn get_str(j: &Json, key: &str, what: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("{what}: missing or non-string '{key}'"))
}

fn get_hex64(j: &Json, key: &str, what: &str) -> Result<u64, String> {
    let s = get_str(j, key, what)?;
    u64::from_str_radix(&s, 16).map_err(|e| format!("{what}: bad hex '{key}': {e}"))
}

fn model_from_json(j: &Json, what: &str) -> Result<ModelConstants, String> {
    Ok(ModelConstants {
        t_leaf: get_f64(j, "t_leaf", what)?,
        t_copy: get_f64(j, "t_copy", what)?,
        alpha: get_f64(j, "alpha", what)?,
        beta: get_f64(j, "beta", what)?,
        gamma: get_f64(j, "gamma", what)?,
    })
}

/// Strict decode: unknown schema versions and malformed fields are errors
/// (a gate must not silently accept a drifted artifact shape).
pub fn scaling_report_from_json(j: &Json) -> Result<ScalingReport, String> {
    let schema = get_str(j, "schema", "report")?;
    if schema != SCALING_REPORT_SCHEMA {
        return Err(format!(
            "unsupported schema '{schema}' (want {SCALING_REPORT_SCHEMA})"
        ));
    }
    let ranks = match j.get("ranks") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|x| {
                x.as_f64()
                    .filter(|v| *v >= 1.0 && v.fract() == 0.0)
                    .map(|v| v as u64)
                    .ok_or_else(|| "report: bad entry in 'ranks'".to_string())
            })
            .collect::<Result<Vec<u64>, String>>()?,
        _ => return Err("report: missing 'ranks' array".into()),
    };
    let cases = match j.get("cases") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|c| {
                let name = get_str(c, "name", "case")?;
                let what = format!("case {name}");
                let points = match c.get("points") {
                    Some(Json::Arr(pts)) => pts
                        .iter()
                        .map(|p| {
                            Ok(ScalingPoint {
                                ranks: get_u64(p, "ranks", &what)?,
                                elems: get_u64(p, "elems", &what)?,
                                dofs: get_u64(p, "dofs", &what)?,
                                elems_per_rank_min: get_u64(p, "elems_per_rank_min", &what)?,
                                elems_per_rank_max: get_u64(p, "elems_per_rank_max", &what)?,
                                owned_nodes_max: get_u64(p, "owned_nodes_max", &what)?,
                                ghost_nodes_max: get_u64(p, "ghost_nodes_max", &what)?,
                                ghost_bytes_max: get_u64(p, "ghost_bytes_max", &what)?,
                                send_bytes_max: get_u64(p, "send_bytes_max", &what)?,
                                neighbors_max: get_u64(p, "neighbors_max", &what)?,
                                digest: get_hex64(p, "digest", &what)?,
                                t_model: get_f64(p, "t_model", &what)?,
                                efficiency: get_f64(p, "efficiency", &what)?,
                            })
                        })
                        .collect::<Result<Vec<ScalingPoint>, String>>()?,
                    _ => return Err(format!("{what}: missing 'points' array")),
                };
                Ok(ScalingCase {
                    order: get_u64(c, "order", &what)?,
                    kind: get_str(c, "kind", &what)?,
                    efficiency_floor: get_f64(c, "efficiency_floor", &what)?,
                    name,
                    points,
                })
            })
            .collect::<Result<Vec<ScalingCase>, String>>()?,
        _ => return Err("report: missing 'cases' array".into()),
    };
    Ok(ScalingReport {
        pr: get_u64(j, "pr", "report")?,
        ranks,
        reference_model: model_from_json(
            j.get("reference_model")
                .ok_or("report: missing 'reference_model'")?,
            "reference_model",
        )?,
        calibrated_model: match j.get("calibrated_model") {
            Some(m) => Some(model_from_json(m, "calibrated_model")?),
            None => None,
        },
        cases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScalingReport {
        let point = |ranks: u64, eff: f64| ScalingPoint {
            ranks,
            elems: 601_064,
            dofs: 615_327,
            elems_per_rank_min: 20,
            elems_per_rank_max: 21,
            owned_nodes_max: 2500,
            ghost_nodes_max: 444,
            ghost_bytes_max: 3552,
            send_bytes_max: 3608,
            neighbors_max: 11,
            digest: 0xdead_beef_0123_4567,
            t_model: 1.25e-4,
            efficiency: eff,
        };
        ScalingReport {
            pr: 8,
            ranks: vec![256, 1024, 28672],
            reference_model: ModelConstants {
                t_leaf: 1e-6,
                t_copy: 5e-9,
                alpha: 1e-6,
                beta: 1e-10,
                gamma: 5e-7,
            },
            calibrated_model: Some(ModelConstants {
                t_leaf: 8.1e-7,
                t_copy: 4.4e-9,
                alpha: 3.3e-6,
                beta: 1e-10,
                gamma: 1.9e-6,
            }),
            cases: vec![ScalingCase {
                name: "channel".into(),
                order: 1,
                kind: "strong".into(),
                efficiency_floor: 0.27,
                points: vec![point(256, 1.0), point(1024, 0.81), point(28672, 0.29)],
            }],
        }
    }

    #[test]
    fn round_trips_bitwise() {
        let r = sample();
        let text = scaling_report_to_json(&r).to_string_pretty();
        let back = scaling_report_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        // And the serialized form is stable (the gate diffs documents).
        assert_eq!(scaling_report_to_json(&back).to_string_pretty(), text);
    }

    #[test]
    fn rejects_unknown_schema_and_bad_fields() {
        let mut j = scaling_report_to_json(&sample());
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Str("carve-scaling-report-v9".into());
        }
        assert!(scaling_report_from_json(&j).is_err());
        assert!(scaling_report_from_json(&Json::Num(1.0)).is_err());
        let mut j = scaling_report_to_json(&sample());
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| k != "reference_model");
        }
        assert!(scaling_report_from_json(&j).is_err());
    }

    #[test]
    fn calibrated_model_is_optional() {
        let mut r = sample();
        r.calibrated_model = None;
        let text = scaling_report_to_json(&r).to_string_pretty();
        let back = scaling_report_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
