//! JSON (de)serialization of the request-replay serving report — the
//! document `bench_serve` emits and the CI `serve-gate` stage checks.
//!
//! Schema:
//!
//! ```json
//! {
//!   "schema": "carve-serve-report-v1",
//!   "pr": 10,
//!   "ranks": 2,
//!   "requests": 24,
//!   "scenarios": 2,
//!   "cache_hits": 14, "cache_misses": 3, "cache_evictions": 1,
//!   "cache_admitted_bytes": 1048576,
//!   "block_rounds": 18, "seq_rounds": 72,
//!   "result_digest": "f1d2d2f924e986ac",
//!   "hit_miss_speedup": 11.3,
//!   "throughput_rps": 950.0,
//!   "classes": [
//!     { "class": "channel/hit_solve", "requests": 6,
//!       "p50_us": 120.0, "p99_us": 180.0, "mean_us": 130.0 }
//!   ]
//! }
//! ```
//!
//! Two kinds of fields coexist: **deterministic** request/cache/round
//! counts and the `result_digest` (an order-fixed FNV fold of every solve's
//! solution bits and every point read — pure functions of the trace seed,
//! byte-compared across the serve-gate's threads × chaos matrix), and
//! **machine-dependent** latency quantiles and throughput (gated by floors,
//! never diffed). [`serve_report_strip_latency`] projects a document onto
//! the deterministic subset for the bitwise comparison.

use crate::json::Json;

/// Schema tag stamped into every serialized serve report.
pub const SERVE_REPORT_SCHEMA: &str = "carve-serve-report-v1";

/// Latency fields removed by [`serve_report_strip_latency`].
const LATENCY_KEYS: [&str; 5] = [
    "p50_us",
    "p99_us",
    "mean_us",
    "hit_miss_speedup",
    "throughput_rps",
];

/// Per-request-class latency summary (one class per scenario × request
/// kind, e.g. `"channel/hit_solve"`).
#[derive(Clone, Debug, PartialEq)]
pub struct ServeClassStats {
    pub class: String,
    pub requests: u64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub mean_us: f64,
}

/// A whole request-replay serving report.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    pub pr: u64,
    pub ranks: u64,
    /// Total requests replayed (all classes).
    pub requests: u64,
    /// Distinct scenarios the trace touches.
    pub scenarios: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_admitted_bytes: u64,
    /// Collective rounds spent by the k-lane block solves…
    pub block_rounds: u64,
    /// …and by the equivalent sequential per-RHS solves.
    pub seq_rounds: u64,
    /// Order-fixed FNV-1a fold of every solve's solution bits and every
    /// point-query value — the replay's deterministic fingerprint.
    pub result_digest: u64,
    /// Worst-case (minimum over scenarios) miss-p50 / hit-p50 ratio.
    pub hit_miss_speedup: f64,
    /// Requests per second over the whole replay.
    pub throughput_rps: f64,
    pub classes: Vec<ServeClassStats>,
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

/// Encodes a report as a self-describing JSON object.
pub fn serve_report_to_json(r: &ServeReport) -> Json {
    let classes = r
        .classes
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("class".into(), Json::Str(c.class.clone())),
                ("requests".into(), num(c.requests)),
                ("p50_us".into(), Json::Num(c.p50_us)),
                ("p99_us".into(), Json::Num(c.p99_us)),
                ("mean_us".into(), Json::Num(c.mean_us)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str(SERVE_REPORT_SCHEMA.into())),
        ("pr".into(), num(r.pr)),
        ("ranks".into(), num(r.ranks)),
        ("requests".into(), num(r.requests)),
        ("scenarios".into(), num(r.scenarios)),
        ("cache_hits".into(), num(r.cache_hits)),
        ("cache_misses".into(), num(r.cache_misses)),
        ("cache_evictions".into(), num(r.cache_evictions)),
        ("cache_admitted_bytes".into(), num(r.cache_admitted_bytes)),
        ("block_rounds".into(), num(r.block_rounds)),
        ("seq_rounds".into(), num(r.seq_rounds)),
        (
            "result_digest".into(),
            Json::Str(format!("{:016x}", r.result_digest)),
        ),
        ("hit_miss_speedup".into(), Json::Num(r.hit_miss_speedup)),
        ("throughput_rps".into(), Json::Num(r.throughput_rps)),
        ("classes".into(), Json::Arr(classes)),
    ])
}

fn get_f64(j: &Json, key: &str, what: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what}: missing or non-numeric '{key}'"))
}

fn get_u64(j: &Json, key: &str, what: &str) -> Result<u64, String> {
    let v = get_f64(j, key, what)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("{what}: '{key}' = {v} is not a u64"));
    }
    Ok(v as u64)
}

fn get_str(j: &Json, key: &str, what: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("{what}: missing or non-string '{key}'"))
}

/// Strict decode: unknown schema versions and malformed fields are errors
/// (a gate must not silently accept a drifted artifact shape).
pub fn serve_report_from_json(j: &Json) -> Result<ServeReport, String> {
    let schema = get_str(j, "schema", "report")?;
    if schema != SERVE_REPORT_SCHEMA {
        return Err(format!(
            "unsupported schema '{schema}' (want {SERVE_REPORT_SCHEMA})"
        ));
    }
    let classes = match j.get("classes") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|c| {
                let class = get_str(c, "class", "class")?;
                let what = format!("class {class}");
                Ok(ServeClassStats {
                    requests: get_u64(c, "requests", &what)?,
                    p50_us: get_f64(c, "p50_us", &what)?,
                    p99_us: get_f64(c, "p99_us", &what)?,
                    mean_us: get_f64(c, "mean_us", &what)?,
                    class,
                })
            })
            .collect::<Result<Vec<ServeClassStats>, String>>()?,
        _ => return Err("report: missing 'classes' array".into()),
    };
    let digest_s = get_str(j, "result_digest", "report")?;
    let result_digest = u64::from_str_radix(&digest_s, 16)
        .map_err(|e| format!("report: bad hex 'result_digest': {e}"))?;
    Ok(ServeReport {
        pr: get_u64(j, "pr", "report")?,
        ranks: get_u64(j, "ranks", "report")?,
        requests: get_u64(j, "requests", "report")?,
        scenarios: get_u64(j, "scenarios", "report")?,
        cache_hits: get_u64(j, "cache_hits", "report")?,
        cache_misses: get_u64(j, "cache_misses", "report")?,
        cache_evictions: get_u64(j, "cache_evictions", "report")?,
        cache_admitted_bytes: get_u64(j, "cache_admitted_bytes", "report")?,
        block_rounds: get_u64(j, "block_rounds", "report")?,
        seq_rounds: get_u64(j, "seq_rounds", "report")?,
        result_digest,
        hit_miss_speedup: get_f64(j, "hit_miss_speedup", "report")?,
        throughput_rps: get_f64(j, "throughput_rps", "report")?,
        classes,
    })
}

/// Projects a serve-report document onto its deterministic subset by
/// recursively dropping every latency field — two replays of the same
/// trace must serialize to byte-identical stripped documents regardless of
/// thread budget, chaos plan, or machine speed.
pub fn serve_report_strip_latency(j: &Json) -> Json {
    match j {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| !LATENCY_KEYS.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), serve_report_strip_latency(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(serve_report_strip_latency).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        let class = |name: &str, n: u64, p50: f64| ServeClassStats {
            class: name.into(),
            requests: n,
            p50_us: p50,
            p99_us: p50 * 1.8,
            mean_us: p50 * 1.1,
        };
        ServeReport {
            pr: 10,
            ranks: 2,
            requests: 24,
            scenarios: 2,
            cache_hits: 14,
            cache_misses: 3,
            cache_evictions: 1,
            cache_admitted_bytes: 1_048_576,
            block_rounds: 18,
            seq_rounds: 72,
            result_digest: 0xf1d2_d2f9_24e9_86ac,
            hit_miss_speedup: 11.3,
            throughput_rps: 950.0,
            classes: vec![
                class("channel/hit_solve", 6, 120.0),
                class("channel/miss_solve", 2, 4200.0),
                class("sphere/block_solve", 4, 600.0),
                class("sphere/point_query", 12, 40.0),
            ],
        }
    }

    #[test]
    fn round_trips_bitwise() {
        let r = sample();
        let text = serve_report_to_json(&r).to_string_pretty();
        let back = serve_report_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(serve_report_to_json(&back).to_string_pretty(), text);
    }

    #[test]
    fn rejects_unknown_schema_and_bad_fields() {
        let mut j = serve_report_to_json(&sample());
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Str("carve-serve-report-v9".into());
        }
        assert!(serve_report_from_json(&j).is_err());
        assert!(serve_report_from_json(&Json::Num(1.0)).is_err());
        let mut j = serve_report_to_json(&sample());
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| k != "result_digest");
        }
        assert!(serve_report_from_json(&j).is_err());
    }

    #[test]
    fn strip_latency_is_invariant_to_timings() {
        let a = sample();
        let mut b = sample();
        b.hit_miss_speedup = 99.9;
        b.throughput_rps = 1.0;
        for c in &mut b.classes {
            c.p50_us *= 3.0;
            c.p99_us += 17.0;
            c.mean_us = 0.0;
        }
        let sa = serve_report_strip_latency(&serve_report_to_json(&a)).to_string_pretty();
        let sb = serve_report_strip_latency(&serve_report_to_json(&b)).to_string_pretty();
        assert_eq!(sa, sb, "stripped documents must ignore latency");
        assert!(!sa.contains("p50_us") && !sa.contains("throughput_rps"));
        // Deterministic fields still survive the projection.
        assert!(sa.contains("result_digest") && sa.contains("cache_hits"));
        // And a deterministic drift is visible.
        let mut c = sample();
        c.cache_hits += 1;
        let sc = serve_report_strip_latency(&serve_report_to_json(&c)).to_string_pretty();
        assert_ne!(sa, sc);
    }
}
