//! Fixed-width console tables and CSV output for the reproduction
//! harnesses.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV.
    pub fn to_csv(&self, path: &Path) -> std::io::Result<()> {
        write_csv(path, &self.headers, &self.rows)
    }
}

/// Writes rows as CSV (simple quoting: fields containing commas are
/// quoted).
pub fn write_csv(path: &Path, headers: &[String], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let esc = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    writeln!(
        f,
        "{}",
        headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
    )?;
    for r in rows {
        writeln!(
            f,
            "{}",
            r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    f.flush()
}

/// Formats a float compactly for tables.
pub fn fmt_g(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 0.01 && x.abs() < 100000.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header", "c"]);
        t.row(&["1".into(), "2".into(), "3.5".into()]);
        t.row(&["100".into(), "x".into(), "y".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines have the same length.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_roundtrip_quoting() {
        let dir = std::env::temp_dir().join("carve_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.csv");
        write_csv(
            &p,
            &["x".into(), "y,z".into()],
            &[vec!["a\"b".into(), "2".into()]],
        )
        .unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.contains("\"y,z\""));
        assert!(s.contains("\"a\"\"b\""));
    }

    #[test]
    fn fmt_g_ranges() {
        assert_eq!(fmt_g(0.0), "0");
        assert_eq!(fmt_g(1.5), "1.500");
        assert!(fmt_g(1e-7).contains('e'));
    }
}
