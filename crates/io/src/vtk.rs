//! Legacy-ASCII VTK unstructured-grid output (hexahedra in 3D, quads in
//! 2D), enough to visualize carved meshes and solution fields (the Fig.
//! 14/16 style pictures) in ParaView.

use std::io::Write;
use std::path::Path;

/// Writes an unstructured grid.
///
/// * `points` — 3D coordinates (pad 2D with z = 0).
/// * `cells` — connectivity per cell; length 8 → `VTK_HEXAHEDRON` (VTK
///   vertex order), length 4 → `VTK_QUAD`.
/// * `point_data` — named scalar fields over points.
pub fn write_vtk_mesh(
    path: &Path,
    points: &[[f64; 3]],
    cells: &[Vec<u32>],
    point_data: &[(&str, &[f64])],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "# vtk DataFile Version 3.0")?;
    writeln!(f, "carve mesh")?;
    writeln!(f, "ASCII")?;
    writeln!(f, "DATASET UNSTRUCTURED_GRID")?;
    writeln!(f, "POINTS {} double", points.len())?;
    for p in points {
        writeln!(f, "{} {} {}", p[0], p[1], p[2])?;
    }
    let total: usize = cells.iter().map(|c| c.len() + 1).sum();
    writeln!(f, "CELLS {} {}", cells.len(), total)?;
    for c in cells {
        write!(f, "{}", c.len())?;
        for v in c {
            write!(f, " {v}")?;
        }
        writeln!(f)?;
    }
    writeln!(f, "CELL_TYPES {}", cells.len())?;
    for c in cells {
        let t = match c.len() {
            8 => 12, // VTK_HEXAHEDRON
            4 => 9,  // VTK_QUAD
            _ => panic!("unsupported cell size {}", c.len()),
        };
        writeln!(f, "{t}")?;
    }
    if !point_data.is_empty() {
        writeln!(f, "POINT_DATA {}", points.len())?;
        for (name, data) in point_data {
            assert_eq!(data.len(), points.len(), "field {name} length mismatch");
            writeln!(f, "SCALARS {name} double 1")?;
            writeln!(f, "LOOKUP_TABLE default")?;
            for v in *data {
                writeln!(f, "{v}")?;
            }
        }
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_valid_quad_file() {
        let dir = std::env::temp_dir().join("carve_vtk_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("quad.vtk");
        let pts = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 0.0],
            [0.0, 1.0, 0.0],
        ];
        let cells = vec![vec![0u32, 1, 2, 3]];
        let field = vec![0.0, 1.0, 2.0, 3.0];
        write_vtk_mesh(&p, &pts, &cells, &[("u", &field)]).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.contains("POINTS 4 double"));
        assert!(s.contains("CELLS 1 5"));
        assert!(s.contains("CELL_TYPES 1"));
        assert!(s.contains("SCALARS u double 1"));
    }
}
