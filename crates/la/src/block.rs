//! Block (multi-RHS) conjugate gradients.
//!
//! A serving engine answering many queries against one cached operator
//! solves the *same* SPD system for k different right-hand sides. Running k
//! independent [`crate::cg_with`] solves costs `k × (2 per iteration + 2
//! setup)` reduction rounds; on a distributed [`Reduce`] backend every
//! round is an `all_reduce_f64_many` collective. [`block_cg_with`] runs the
//! k recurrences in lockstep and *fuses* their reductions: one batched
//! `(p_j · Ap_j)` round and one batched `(r_j · z_j, r_j · r_j)` round per
//! iteration regardless of k — the per-iteration collective count drops
//! from `2k` to `2`.
//!
//! The recurrences stay mathematically independent: nothing couples lane j
//! to lane j' (this is *fused* CG, not a Krylov block method with a shared
//! subspace). Because [`Reduce::dots`] computes each pair independently —
//! the distributed backend sums each pair's local partials and ships them
//! through one elementwise `all_reduce_f64_many` — every lane's scalars are
//! bitwise identical to the ones a solo [`crate::cg_with`] run would
//! produce. The identity tests assert exactly that, per lane, for
//! k ∈ {1, 2, 4}, including lanes that converge (or stall) early.
//!
//! Early-exiting lanes are masked out, mirroring the solo control flow
//! exactly: convergence/divergence is checked at the top of the iteration
//! (before either batch), and a lane whose `p·Ap` breaks down leaves after
//! the first batch without contributing to the second — the same return
//! points [`crate::cg_with`] has. Remaining lanes keep fusing among
//! themselves.
//!
//! Each lane's matvec goes through the caller's [`LinOp`] unchanged, so on
//! the mesh path it rides the batched SoA leaf panels of `matvec_par`
//! (ghost exchange is point-to-point and unaffected by fusion).

use crate::krylov::{KrylovResult, KrylovScratch, Lease, LinOp, Precond, Reduce};
use crate::vector::axpy;

/// Per-lane recurrence state. `rn` caches the top-of-iteration residual
/// norm so a breakdown exit after the first batch reports the same residual
/// the solo solver would.
struct Lane {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    rz: f64,
    rn2: f64,
    rn: f64,
    last_finite: f64,
    tol: f64,
    result: Option<KrylovResult>,
}

/// Multi-RHS CG: solves `A x_j = b_j` for every lane j in lockstep, fusing
/// the per-iteration inner products of all still-active lanes into two
/// [`Reduce::dots`] batches. Per-lane results are bitwise identical to k
/// independent [`crate::cg_with`] runs with the same arguments; lanes
/// converge, stall, or diverge individually at the same iteration the solo
/// solver would.
#[allow(clippy::too_many_arguments)]
pub fn block_cg_with<A: LinOp, M: Precond, R: Reduce + ?Sized>(
    a: &A,
    bs: &[&[f64]],
    xs: &mut [&mut [f64]],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
    rd: &R,
) -> Vec<KrylovResult> {
    block_cg_impl(a, bs, xs, m, rtol, atol, max_iter, rd, Lease::Fresh)
}

/// [`block_cg_with`] drawing its `4k` work vectors from a caller-held
/// [`KrylovScratch`] pool: warm repeat solves on the serving path run
/// allocation-free. Bitwise identical to [`block_cg_with`].
#[allow(clippy::too_many_arguments)]
pub fn block_cg_scratch<A: LinOp, M: Precond, R: Reduce + ?Sized>(
    a: &A,
    bs: &[&[f64]],
    xs: &mut [&mut [f64]],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
    rd: &R,
    scratch: &mut KrylovScratch,
) -> Vec<KrylovResult> {
    block_cg_impl(a, bs, xs, m, rtol, atol, max_iter, rd, Lease::Pool(scratch))
}

#[allow(clippy::too_many_arguments)]
fn block_cg_impl<A: LinOp, M: Precond, R: Reduce + ?Sized>(
    a: &A,
    bs: &[&[f64]],
    xs: &mut [&mut [f64]],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
    rd: &R,
    mut lease: Lease<'_>,
) -> Vec<KrylovResult> {
    let k = bs.len();
    assert_eq!(xs.len(), k, "one initial guess per right-hand side");
    let n = a.size();
    for j in 0..k {
        assert_eq!(bs[j].len(), n);
        assert_eq!(xs[j].len(), n);
    }
    if k == 0 {
        return Vec::new();
    }

    let mut lanes: Vec<Lane> = (0..k)
        .map(|_| Lane {
            r: lease.take(n),
            z: lease.take(n),
            p: lease.take(n),
            ap: lease.take(n),
            rz: 0.0,
            rn2: 0.0,
            rn: 0.0,
            last_finite: f64::NAN,
            tol: 0.0,
            result: None,
        })
        .collect();

    // Initial residuals, then one fused round for every lane's ‖b‖² and one
    // for the initial (r·z, r·r) pairs — the same values, bit for bit, the
    // solo setup computes one lane at a time.
    for (j, l) in lanes.iter_mut().enumerate() {
        a.apply(xs[j], &mut l.r);
        for (ri, bi) in l.r.iter_mut().zip(bs[j]) {
            *ri = bi - *ri;
        }
    }
    let mut bb = vec![0.0; k];
    {
        let pairs: Vec<(&[f64], &[f64])> = bs.iter().map(|b| (*b, *b)).collect();
        rd.dots(&pairs, &mut bb);
    }
    for (j, l) in lanes.iter_mut().enumerate() {
        l.tol = rtol * bb[j].sqrt().max(1e-300) + atol;
        m.apply(&l.r, &mut l.z);
        l.p.copy_from_slice(&l.z);
    }
    let mut vals = vec![0.0; 2 * k];
    {
        let pairs: Vec<(&[f64], &[f64])> = lanes
            .iter()
            .flat_map(|l| {
                [
                    (l.r.as_slice(), l.z.as_slice()),
                    (l.r.as_slice(), l.r.as_slice()),
                ]
            })
            .collect();
        rd.dots(&pairs, &mut vals);
    }
    for (j, l) in lanes.iter_mut().enumerate() {
        l.rz = vals[2 * j];
        l.rn2 = vals[2 * j + 1];
    }

    let mut active: Vec<usize> = (0..k).collect();
    for it in 0..max_iter {
        // Top-of-iteration exits, before either batch — the solo solver's
        // divergence/convergence return points.
        active.retain(|&j| {
            let l = &mut lanes[j];
            let rn = l.rn2.sqrt();
            l.rn = rn;
            if !rn.is_finite() {
                l.result = Some(KrylovResult::divergence(it, rn).with_last_finite(l.last_finite));
                return false;
            }
            l.last_finite = rn;
            if rn <= l.tol {
                l.result = Some(KrylovResult::success(it, rn));
                return false;
            }
            true
        });
        if active.is_empty() {
            break;
        }

        for &j in &active {
            let l = &mut lanes[j];
            a.apply(&l.p, &mut l.ap);
        }
        // Fused batch 1: every active lane's p·Ap in one round.
        let mut paps = vec![0.0; active.len()];
        {
            let pairs: Vec<(&[f64], &[f64])> = active
                .iter()
                .map(|&j| (lanes[j].p.as_slice(), lanes[j].ap.as_slice()))
                .collect();
            rd.dots(&pairs, &mut paps);
        }
        // Breakdown lanes leave here, after batch 1 and before batch 2 —
        // the solo solver's stall return point.
        let mut live = Vec::with_capacity(active.len());
        for (i, &j) in active.iter().enumerate() {
            let pap = paps[i];
            let l = &mut lanes[j];
            if pap.abs() < 1e-300 || !pap.is_finite() {
                l.result = Some(KrylovResult::stalled(it, l.rn));
                continue;
            }
            let alpha = l.rz / pap;
            axpy(alpha, &l.p, xs[j]);
            axpy(-alpha, &l.ap, &mut l.r);
            m.apply(&l.r, &mut l.z);
            live.push(j);
        }
        active = live;
        if active.is_empty() {
            break;
        }
        // Fused batch 2: every surviving lane's (r·z, r·r) pair in one round.
        let mut vals = vec![0.0; 2 * active.len()];
        {
            let pairs: Vec<(&[f64], &[f64])> = active
                .iter()
                .flat_map(|&j| {
                    let l = &lanes[j];
                    [
                        (l.r.as_slice(), l.z.as_slice()),
                        (l.r.as_slice(), l.r.as_slice()),
                    ]
                })
                .collect();
            rd.dots(&pairs, &mut vals);
        }
        for (i, &j) in active.iter().enumerate() {
            let l = &mut lanes[j];
            let beta = vals[2 * i] / l.rz;
            l.rz = vals[2 * i];
            l.rn2 = vals[2 * i + 1];
            for (pi, zi) in l.p.iter_mut().zip(&l.z) {
                *pi = zi + beta * *pi;
            }
        }
    }

    // Lanes still live at the iteration cap get the solo solver's tail.
    let results: Vec<KrylovResult> = lanes
        .iter()
        .map(|l| {
            l.result.unwrap_or_else(|| {
                let rn = l.rn2.sqrt();
                KrylovResult {
                    converged: rn <= l.tol,
                    iterations: max_iter,
                    residual: rn,
                    diverged: !rn.is_finite(),
                    last_finite_residual: if rn.is_finite() {
                        Some(rn)
                    } else {
                        l.last_finite.is_finite().then_some(l.last_finite)
                    },
                }
            })
        })
        .collect();

    // LIFO restore in reverse loan order (pointer stability for the next
    // same-shape solve).
    for l in lanes.into_iter().rev() {
        lease.put(l.ap);
        lease.put(l.p);
        lease.put(l.z);
        lease.put(l.r);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krylov::{cg_with, IdentityPrecond, JacobiPrecond, LocalReduce};
    use crate::CsrMatrix;
    use std::cell::RefCell;

    /// Counting wrapper: one `calls` tick per `dots` round, plus the pair
    /// total, so tests can assert the fusion arithmetic exactly.
    struct CountingReduce {
        calls: RefCell<usize>,
        pairs: RefCell<usize>,
    }

    impl CountingReduce {
        fn new() -> Self {
            Self {
                calls: RefCell::new(0),
                pairs: RefCell::new(0),
            }
        }
    }

    impl Reduce for CountingReduce {
        fn dots(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
            *self.calls.borrow_mut() += 1;
            *self.pairs.borrow_mut() += pairs.len();
            LocalReduce.dots(pairs, out);
        }
    }

    /// SPD test operator: 1-D Laplacian plus a diagonal shift.
    fn laplacian(n: usize, shift: f64) -> CsrMatrix {
        let mut coo = crate::CooBuilder::new(n);
        for i in 0..n {
            coo.add(i, i, 2.0 + shift);
            if i > 0 {
                coo.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.add(i, i + 1, -1.0);
            }
        }
        coo.build()
    }

    fn rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 1000) as f64 / 500.0 - 1.0
            })
            .collect()
    }

    fn assert_lane_identity(k: usize, rtol: f64, max_iter: usize) {
        let n = 64;
        let a = laplacian(n, 0.1);
        let m = JacobiPrecond::new(&a.diagonal());
        let bs: Vec<Vec<f64>> = (0..k as u64).map(|s| rhs(n, s + 1)).collect();

        let mut solo_x: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
        let solo_res: Vec<KrylovResult> = (0..k)
            .map(|j| {
                cg_with(
                    &a,
                    &bs[j],
                    &mut solo_x[j],
                    &m,
                    rtol,
                    0.0,
                    max_iter,
                    &LocalReduce,
                )
            })
            .collect();

        let mut block_x: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
        let b_refs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();
        let mut x_refs: Vec<&mut [f64]> = block_x.iter_mut().map(|x| x.as_mut_slice()).collect();
        let block_res = block_cg_with(
            &a,
            &b_refs,
            &mut x_refs,
            &m,
            rtol,
            0.0,
            max_iter,
            &LocalReduce,
        );

        for j in 0..k {
            assert_eq!(block_res[j].iterations, solo_res[j].iterations, "lane {j}");
            assert_eq!(block_res[j].converged, solo_res[j].converged, "lane {j}");
            assert_eq!(
                block_res[j].residual.to_bits(),
                solo_res[j].residual.to_bits(),
                "lane {j} residual"
            );
            for i in 0..n {
                assert_eq!(
                    block_x[j][i].to_bits(),
                    solo_x[j][i].to_bits(),
                    "lane {j} x[{i}]"
                );
            }
        }
    }

    #[test]
    fn block_cg_matches_solo_bitwise_k1() {
        assert_lane_identity(1, 1e-10, 400);
    }

    #[test]
    fn block_cg_matches_solo_bitwise_k2() {
        assert_lane_identity(2, 1e-10, 400);
    }

    #[test]
    fn block_cg_matches_solo_bitwise_k4() {
        assert_lane_identity(4, 1e-10, 400);
    }

    /// A lane whose RHS is a pure eigen-direction of a diagonal operator
    /// converges in one iteration; the others keep iterating. The early
    /// lane's exit iteration and bits must match its solo run, and the
    /// stragglers must be unaffected by the mask.
    #[test]
    fn block_cg_masks_converged_early_lane() {
        let n = 48;
        let a = laplacian(n, 0.5);
        let m = IdentityPrecond;
        // Lane 0: b = A e_17, so x = e_17 is hit by the first CG step.
        let mut b0 = vec![0.0; n];
        {
            let mut e = vec![0.0; n];
            e[17] = 1.0;
            a.matvec(&e, &mut b0);
        }
        let bs = [b0, rhs(n, 7), rhs(n, 8), rhs(n, 9)];

        let mut solo_x: Vec<Vec<f64>> = vec![vec![0.0; n]; 4];
        let solo: Vec<KrylovResult> = (0..4)
            .map(|j| {
                cg_with(
                    &a,
                    &bs[j],
                    &mut solo_x[j],
                    &m,
                    1e-10,
                    0.0,
                    300,
                    &LocalReduce,
                )
            })
            .collect();
        assert!(
            solo[0].iterations < solo[1].iterations,
            "lane 0 must exit early"
        );

        let mut block_x: Vec<Vec<f64>> = vec![vec![0.0; n]; 4];
        let b_refs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();
        let mut x_refs: Vec<&mut [f64]> = block_x.iter_mut().map(|x| x.as_mut_slice()).collect();
        let block = block_cg_with(&a, &b_refs, &mut x_refs, &m, 1e-10, 0.0, 300, &LocalReduce);

        for j in 0..4 {
            assert_eq!(block[j].iterations, solo[j].iterations, "lane {j}");
            assert_eq!(
                block[j].residual.to_bits(),
                solo[j].residual.to_bits(),
                "lane {j}"
            );
            for i in 0..n {
                assert_eq!(block_x[j][i].to_bits(), solo_x[j][i].to_bits());
            }
        }
    }

    /// A zero RHS converges at iteration 0 (‖r‖ = 0 ≤ tol): the lane must
    /// exit before contributing to any batch.
    #[test]
    fn block_cg_masks_zero_rhs_lane() {
        let n = 32;
        let a = laplacian(n, 0.25);
        let m = JacobiPrecond::new(&a.diagonal());
        let bs = [vec![0.0; n], rhs(n, 3)];
        let mut block_x: Vec<Vec<f64>> = vec![vec![0.0; n]; 2];
        let b_refs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();
        let mut x_refs: Vec<&mut [f64]> = block_x.iter_mut().map(|x| x.as_mut_slice()).collect();
        let block = block_cg_with(&a, &b_refs, &mut x_refs, &m, 1e-12, 0.0, 200, &LocalReduce);
        assert!(block[0].converged);
        assert_eq!(block[0].iterations, 0);
        assert!(block_x[0].iter().all(|&v| v == 0.0));
        assert!(block[1].converged);
        assert!(block[1].iterations > 0);

        let mut solo_x = vec![0.0; n];
        let solo = cg_with(&a, &bs[1], &mut solo_x, &m, 1e-12, 0.0, 200, &LocalReduce);
        assert_eq!(block[1].iterations, solo.iterations);
        for i in 0..n {
            assert_eq!(block_x[1][i].to_bits(), solo_x[i].to_bits());
        }
    }

    /// Round accounting: with every lane active for all `it` iterations the
    /// block solver issues `2 + 2·it` dots rounds total — independent of k —
    /// where k sequential solves issue `k · (2 + 2·it)`.
    #[test]
    fn block_cg_fuses_rounds_across_lanes() {
        let n = 40;
        let a = laplacian(n, 0.0);
        let m = IdentityPrecond;
        let k = 4;
        let iters = 12;
        let bs: Vec<Vec<f64>> = (0..k as u64).map(|s| rhs(n, s + 11)).collect();

        // rtol = 0 with a fixed cap: every lane runs exactly `iters`
        // iterations, so the round count is deterministic.
        let block_rd = CountingReduce::new();
        let mut block_x: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
        let b_refs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();
        let mut x_refs: Vec<&mut [f64]> = block_x.iter_mut().map(|x| x.as_mut_slice()).collect();
        block_cg_with(&a, &b_refs, &mut x_refs, &m, 0.0, 0.0, iters, &block_rd);
        let block_rounds = *block_rd.calls.borrow();
        assert_eq!(block_rounds, 2 + 2 * iters);
        // Every round carried all k lanes' pairs.
        assert_eq!(*block_rd.pairs.borrow(), k + 2 * k + iters * (k + 2 * k));

        let seq_rd = CountingReduce::new();
        for b in &bs {
            let mut x = vec![0.0; n];
            cg_with(&a, b, &mut x, &m, 0.0, 0.0, iters, &seq_rd);
        }
        let seq_rounds = *seq_rd.calls.borrow();
        assert_eq!(seq_rounds, k * (2 + 2 * iters));
        // The acceptance bar: k = 4 must use ≤ 1/3 the rounds.
        assert!(3 * block_rounds <= seq_rounds);
    }

    /// Scratch-backed block solves are bitwise identical to allocating ones
    /// and reuse the exact buffers (pointer-stable) across repeat solves.
    #[test]
    fn block_cg_scratch_identity_and_pointer_stability() {
        let n = 56;
        let a = laplacian(n, 0.3);
        let m = JacobiPrecond::new(&a.diagonal());
        let k = 3;
        let bs: Vec<Vec<f64>> = (0..k as u64).map(|s| rhs(n, s + 21)).collect();
        let b_refs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();

        let mut fresh_x: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
        {
            let mut x_refs: Vec<&mut [f64]> =
                fresh_x.iter_mut().map(|x| x.as_mut_slice()).collect();
            block_cg_with(&a, &b_refs, &mut x_refs, &m, 1e-11, 0.0, 300, &LocalReduce);
        }

        let mut scratch = KrylovScratch::new();
        let mut first_ptrs = Vec::new();
        for round in 0..3 {
            let mut x: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
            let mut x_refs: Vec<&mut [f64]> = x.iter_mut().map(|x| x.as_mut_slice()).collect();
            block_cg_scratch(
                &a,
                &b_refs,
                &mut x_refs,
                &m,
                1e-11,
                0.0,
                300,
                &LocalReduce,
                &mut scratch,
            );
            for j in 0..k {
                for i in 0..n {
                    assert_eq!(x[j][i].to_bits(), fresh_x[j][i].to_bits());
                }
            }
            assert_eq!(scratch.pooled(), 4 * k);
            let snapshot = scratch_ptrs(&mut scratch, 4 * k, n);
            if round == 0 {
                first_ptrs = snapshot;
            } else {
                assert_eq!(
                    snapshot, first_ptrs,
                    "round {round} reused different buffers"
                );
            }
        }
    }

    /// Drains and restores the pool to read the buffer addresses in LIFO
    /// order (take/put round-trips preserve both addresses and order).
    fn scratch_ptrs(s: &mut KrylovScratch, count: usize, n: usize) -> Vec<usize> {
        let bufs: Vec<Vec<f64>> = (0..count).map(|_| s.take(n)).collect();
        let ptrs: Vec<usize> = bufs.iter().map(|b| b.as_ptr() as usize).collect();
        for b in bufs.into_iter().rev() {
            s.put(b);
        }
        ptrs
    }
}
