//! 1-norm condition estimation à la Matlab's `condest` (Hager 1984 /
//! Higham 1988): `cond₁(A) ≈ ‖A‖₁ · est(‖A⁻¹‖₁)`, where the inverse norm is
//! estimated from a few LU solves with `A` and `Aᵀ`.
//!
//! Table 1 of the paper uses Matlab `condest` on the assembled Laplace
//! operators; this is the same algorithm.

use crate::dense::DenseMatrix;

/// Estimates `‖A⁻¹‖₁` given LU factors, by Hager's power method on the
/// convex function `‖A⁻¹ x‖₁` over the 1-ball.
fn inv_norm1_estimate(lu: &crate::dense::LuFactors) -> f64 {
    let n = lu.n();
    if n == 0 {
        return 0.0;
    }
    let mut x = vec![1.0 / n as f64; n];
    let mut best = 0.0f64;
    for _iter in 0..8 {
        // y = A⁻¹ x
        let mut y = x.clone();
        lu.solve(&mut y);
        let ynorm: f64 = y.iter().map(|v| v.abs()).sum();
        best = best.max(ynorm);
        // xi = sign(y)
        let xi: Vec<f64> = y
            .iter()
            .map(|v| if *v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        // z = A⁻ᵀ xi
        let mut z = xi;
        lu.solve_t(&mut z);
        // Find j maximizing |z_j|.
        let (jmax, zmax) = z
            .iter()
            .enumerate()
            .map(|(j, v)| (j, v.abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty");
        let ztx: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        if zmax <= ztx {
            break; // converged to a local maximum
        }
        x = vec![0.0; n];
        x[jmax] = 1.0;
    }
    // Lower bound safeguard with the alternating-sign probe vector
    // (Higham's refinement).
    let mut probe: Vec<f64> = (0..n)
        .map(|i| {
            let v = 1.0 + i as f64 / ((n - 1).max(1)) as f64;
            if i % 2 == 0 {
                v
            } else {
                -v
            }
        })
        .collect();
    lu.solve(&mut probe);
    let probe_norm: f64 = probe.iter().map(|v| v.abs()).sum::<f64>() * 2.0 / (3.0 * n as f64);
    best.max(probe_norm)
}

/// Estimates the 1-norm condition number of a dense matrix. Returns
/// `f64::INFINITY` for singular matrices (Matlab convention).
pub fn condest(a: &DenseMatrix) -> f64 {
    match a.lu() {
        Ok(lu) => a.norm1() * inv_norm1_estimate(&lu),
        Err(_) => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_exact() {
        let mut a = DenseMatrix::zeros(4, 4);
        for (i, d) in [1.0, 2.0, 4.0, 100.0].iter().enumerate() {
            a[(i, i)] = *d;
        }
        let c = condest(&a);
        // cond_1 = 100 / 1 * ... = 100 exactly for diagonal.
        assert!((c - 100.0).abs() < 1e-9, "c={c}");
    }

    #[test]
    fn identity_is_one() {
        let a = DenseMatrix::identity(10);
        assert!((condest(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_is_infinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(condest(&a).is_infinite());
    }

    #[test]
    fn hilbert_matrix_grows() {
        // Hilbert matrices are famously ill-conditioned; the estimate must
        // capture the growth within a small factor.
        let mut prev = 1.0;
        for n in [3usize, 5, 7] {
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = 1.0 / ((i + j + 1) as f64);
                }
            }
            let c = condest(&a);
            assert!(c > prev * 10.0, "n={n} c={c} prev={prev}");
            prev = c;
        }
    }

    #[test]
    fn estimate_within_factor_of_truth_on_random_spd() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for n in [5usize, 12, 25] {
            // A = Q D Qᵀ-ish via random symmetric + shift; compute true
            // cond_1 by explicit inverse (small n).
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..=i {
                    let v = rng.gen_range(-1.0..1.0);
                    a[(i, j)] = v;
                    a[(j, i)] = v;
                }
                a[(i, i)] += n as f64;
            }
            // Explicit inverse column by column.
            let lu = a.lu().unwrap();
            let mut inv_norm = 0.0f64;
            for j in 0..n {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                lu.solve(&mut e);
                inv_norm = inv_norm.max(e.iter().map(|v| v.abs()).sum());
            }
            let truth = a.norm1() * inv_norm;
            let est = condest(&a);
            assert!(est <= truth * 1.000001, "overestimate n={n}");
            assert!(est >= truth / 3.0, "underestimate n={n}: {est} vs {truth}");
        }
    }
}
