//! Compressed sparse row matrices assembled from (row, col, value) triplets.

use crate::krylov::LinOp;

/// Triplet accumulator: entries with identical `(row, col)` are **added**,
/// matching PETSc's `ADD_VALUES` mode that the traversal-based assembly of
/// §3.6 depends on ("PETSc handles the merging of multi-instanced entries").
#[derive(Clone, Debug, Default)]
pub struct CooBuilder {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooBuilder {
    pub fn new(n: usize) -> Self {
        Self {
            n,
            entries: Vec::new(),
        }
    }

    /// Builder with room for `cap` triplets up front — callers that know the
    /// emission count (assembly: `leaves × npe²`) avoid incremental regrowth.
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        Self {
            n,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Reserves room for at least `additional` more triplets.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Retargets the builder at a (possibly different-sized) system while
    /// keeping the triplet allocation: a serving loop that assembles one
    /// scenario after another reuses the grown capacity instead of paying a
    /// fresh reallocation ramp per request.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.entries.clear();
    }

    #[inline]
    pub fn add(&mut self, row: usize, col: usize, val: f64) {
        debug_assert!(row < self.n && col < self.n);
        if val != 0.0 {
            self.entries.push((row as u32, col as u32, val));
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the CSR matrix, merging duplicates by addition.
    pub fn build(mut self) -> CsrMatrix {
        self.build_and_clear()
    }

    /// Like [`CooBuilder::build`], but leaves the builder alive with its
    /// triplet capacity intact, ready for the next assembly. Time-stepping
    /// loops (e.g. the Picard iteration in `carve-ns`) reassemble a
    /// same-sparsity system every step; recycling the builder avoids
    /// re-growing a `leaves × npe²` triplet buffer each time.
    pub fn build_and_clear(&mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|e| (e.0, e.1));
        let n = self.n;
        let mut row_counts = vec![0usize; n + 1];
        let mut cols: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut last: Option<(u32, u32)> = None;
        for &(r, c, v) in &self.entries {
            if last == Some((r, c)) {
                *vals.last_mut().expect("entry exists") += v;
            } else {
                cols.push(c);
                vals.push(v);
                row_counts[r as usize + 1] += 1;
                last = Some((r, c));
            }
        }
        self.entries.clear();
        for i in 0..n {
            row_counts[i + 1] += row_counts[i];
        }
        CsrMatrix {
            n,
            row_ptr: row_counts,
            cols,
            vals,
        }
    }
}

/// A square CSR sparse matrix.
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    pub n: usize,
    pub row_ptr: Vec<usize>,
    pub cols: Vec<u32>,
    pub vals: Vec<f64>,
}

impl CsrMatrix {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                s += self.vals[k] * x[self.cols[k] as usize];
            }
            *yi = s;
        }
    }

    /// `y = Aᵀ x`.
    pub fn matvec_t(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                y[self.cols[k] as usize] += self.vals[k] * xi;
            }
        }
    }

    /// The diagonal (zeros where no entry is stored).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (i, di) in d.iter_mut().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.cols[k] as usize == i {
                    *di += self.vals[k];
                }
            }
        }
        d
    }

    /// Entry lookup (O(row nnz)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let mut s = 0.0;
        for k in self.row_ptr[i]..self.row_ptr[i + 1] {
            if self.cols[k] as usize == j {
                s += self.vals[k];
            }
        }
        s
    }

    /// Extracts the dense submatrix on `idx × idx` (used by the Additive
    /// Schwarz preconditioner's local block solves).
    pub fn dense_block(&self, idx: &[usize]) -> crate::dense::DenseMatrix {
        let m = idx.len();
        let mut pos = vec![usize::MAX; self.n];
        for (local, &g) in idx.iter().enumerate() {
            pos[g] = local;
        }
        let mut out = crate::dense::DenseMatrix::zeros(m, m);
        for (local_i, &g) in idx.iter().enumerate() {
            for k in self.row_ptr[g]..self.row_ptr[g + 1] {
                let pj = pos[self.cols[k] as usize];
                if pj != usize::MAX {
                    out[(local_i, pj)] += self.vals[k];
                }
            }
        }
        out
    }

    /// Dense conversion (tests and small condition-number studies only).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut out = crate::dense::DenseMatrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[(i, self.cols[k] as usize)] += self.vals[k];
            }
        }
        out
    }
}

impl LinOp for CsrMatrix {
    fn size(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_adds_duplicates() {
        let mut b = CooBuilder::new(3);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.0); // duplicate: add
        b.add(1, 2, 5.0);
        b.add(2, 1, -1.0);
        b.add(1, 2, 1.0); // duplicate (non-adjacent insertion order)
        let m = b.build();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.get(2, 1), -1.0);
        assert_eq!(m.get(2, 2), 0.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn build_and_clear_recycles_builder_capacity() {
        let mut b = CooBuilder::with_capacity(3, 8);
        b.add(0, 0, 1.0);
        b.add(1, 1, 2.0);
        let cap = b.entries.capacity();
        let m1 = b.build_and_clear();
        assert_eq!(m1.get(0, 0), 1.0);
        assert!(b.is_empty());
        assert_eq!(b.entries.capacity(), cap, "capacity must survive the build");
        b.add(0, 1, 4.0);
        let m2 = b.build_and_clear();
        assert_eq!(m2.get(0, 1), 4.0);
        assert_eq!(m2.get(0, 0), 0.0, "stale triplets must not leak through");
    }

    #[test]
    fn empty_rows_are_fine() {
        let mut b = CooBuilder::new(4);
        b.add(3, 0, 2.0);
        let m = b.build();
        let mut y = vec![0.0; 4];
        m.matvec(&[1.0, 0.0, 0.0, 0.0], &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let n = 30;
        let mut b = CooBuilder::new(n);
        for _ in 0..200 {
            b.add(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-1.0..1.0),
            );
        }
        let m = b.build();
        let d = m.to_dense();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        m.matvec(&x, &mut y1);
        d.matvec(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12);
        }
        // Transpose.
        m.matvec_t(&x, &mut y1);
        d.matvec_t(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_block_extraction() {
        let mut b = CooBuilder::new(4);
        for i in 0..4 {
            b.add(i, i, (i + 1) as f64);
        }
        b.add(1, 3, 7.0);
        let m = b.build();
        let blk = m.dense_block(&[1, 3]);
        assert_eq!(blk[(0, 0)], 2.0);
        assert_eq!(blk[(1, 1)], 4.0);
        assert_eq!(blk[(0, 1)], 7.0);
        assert_eq!(blk[(1, 0)], 0.0);
    }

    #[test]
    fn diagonal() {
        let mut b = CooBuilder::new(2);
        b.add(0, 0, 2.0);
        b.add(1, 0, 3.0);
        let m = b.build();
        assert_eq!(m.diagonal(), vec![2.0, 0.0]);
    }
}
