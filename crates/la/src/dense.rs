//! Dense matrices with partial-pivot LU factorization.

/// A dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl DenseMatrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows[0].len();
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c);
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = crate::vector::dot(row, x);
        }
    }

    /// `y = Aᵀ x`.
    pub fn matvec_t(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (yj, aij) in y.iter_mut().zip(row) {
                *yj += aij * xi;
            }
        }
    }

    /// Max column-absolute-sum norm (‖A‖₁).
    pub fn norm1(&self) -> f64 {
        let mut best = 0.0f64;
        for j in 0..self.cols {
            let mut s = 0.0;
            for i in 0..self.rows {
                s += self[(i, j)].abs();
            }
            best = best.max(s);
        }
        best
    }

    /// LU factorization with partial pivoting. Errors on (numerical)
    /// singularity.
    pub fn lu(&self) -> Result<LuFactors, &'static str> {
        assert_eq!(self.rows, self.cols, "LU needs a square matrix");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot search.
            let mut p = k;
            let mut best = a[k * n + k].abs();
            for i in k + 1..n {
                let v = a[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 {
                return Err("singular matrix in LU");
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in k + 1..n {
                let l = a[i * n + k] / pivot;
                a[i * n + k] = l;
                for j in k + 1..n {
                    a[i * n + j] -= l * a[k * n + j];
                }
            }
        }
        Ok(LuFactors { n, lu: a, piv })
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// LU factors with the pivot permutation.
#[derive(Clone, Debug)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
}

impl LuFactors {
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` in place.
    pub fn solve(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Apply the permutation.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (unit lower).
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[i * n + j] * xj;
            }
            x[i] = s;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu[i * n + j] * xj;
            }
            x[i] = s / self.lu[i * n + i];
        }
        b.copy_from_slice(&x);
    }

    /// Solves `Aᵀ x = b` in place (needed by the 1-norm condition
    /// estimator).
    pub fn solve_t(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut x = b.to_vec();
        // Aᵀ = (P⁻¹ L U)ᵀ = Uᵀ Lᵀ P⁻ᵀ; solve Uᵀ y = b, then Lᵀ z = y,
        // then un-permute.
        for i in 0..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[j * n + i] * xj;
            }
            x[i] = s / self.lu[i * n + i];
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu[j * n + i] * xj;
            }
            x[i] = s;
        }
        // b[piv[i]] = x[i]
        for (i, &p) in self.piv.iter().enumerate() {
            b[p] = x[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solves_known_system() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = a.lu().unwrap();
        let mut b = vec![5.0, 10.0];
        lu.solve(&mut b);
        // x = [1, 3]
        assert!((b[0] - 1.0).abs() < 1e-14);
        assert!((b[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn lu_random_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for n in [1usize, 2, 5, 20, 50] {
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.gen_range(-1.0..1.0);
                }
                a[(i, i)] += 4.0; // diagonally dominant: nonsingular
            }
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let mut b = vec![0.0; n];
            a.matvec(&x_true, &mut b);
            let lu = a.lu().unwrap();
            lu.solve(&mut b);
            for (xi, ti) in b.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-10);
            }
            // Transpose solve.
            let mut bt = vec![0.0; n];
            a.matvec_t(&x_true, &mut bt);
            lu.solve_t(&mut bt);
            for (xi, ti) in bt.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-10, "transpose solve n={n}");
            }
        }
    }

    #[test]
    fn lu_detects_singular() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.lu().is_err());
    }

    #[test]
    fn norm1_is_max_column_sum() {
        let a = DenseMatrix::from_rows(&[&[1.0, -7.0], &[-2.0, 3.0]]);
        assert_eq!(a.norm1(), 10.0);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = a.lu().unwrap();
        let mut b = vec![2.0, 3.0];
        lu.solve(&mut b);
        assert_eq!(b, vec![3.0, 2.0]);
    }
}
