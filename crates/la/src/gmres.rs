//! Restarted GMRES — the robust nonsymmetric fallback (PETSc's default
//! KSP) — and a Chebyshev smoother for SPD operators (the standard
//! multigrid smoother when Jacobi damping is too blunt).

use crate::krylov::{KrylovResult, LinOp, Precond};
use crate::vector::{axpy, dot, norm2};

/// Right-preconditioned GMRES(m).
#[allow(clippy::too_many_arguments)]
pub fn gmres<A: LinOp, M: Precond>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    restart: usize,
    rtol: f64,
    atol: f64,
    max_iter: usize,
) -> KrylovResult {
    let n = a.size();
    assert_eq!(b.len(), n);
    let restart = restart.clamp(1, n.max(1));
    let bnorm = norm2(b).max(1e-300);
    let tol = rtol * bnorm + atol;
    let mut total_iters = 0usize;
    let mut r = vec![0.0; n];
    loop {
        // r = b - A x
        a.apply(x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let beta = norm2(&r);
        if !beta.is_finite() {
            return KrylovResult::divergence(total_iters, beta);
        }
        if beta <= tol || total_iters >= max_iter {
            return KrylovResult {
                converged: beta <= tol,
                iterations: total_iters,
                residual: beta,
                diverged: false,
                last_finite_residual: Some(beta),
            };
        }
        // Arnoldi with Givens rotations.
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(restart + 1);
        v.push(r.iter().map(|ri| ri / beta).collect());
        let mut h = vec![vec![0.0f64; restart]; restart + 1];
        let mut cs = vec![0.0f64; restart];
        let mut sn = vec![0.0f64; restart];
        let mut g = vec![0.0f64; restart + 1];
        g[0] = beta;
        let mut k_used = 0;
        let mut z = vec![0.0; n];
        let mut w = vec![0.0; n];
        for k in 0..restart {
            if total_iters >= max_iter {
                break;
            }
            total_iters += 1;
            // w = A M⁻¹ v_k
            m.apply(&v[k], &mut z);
            a.apply(&z, &mut w);
            // Modified Gram-Schmidt.
            for (j, vj) in v.iter().enumerate().take(k + 1) {
                let hjk = dot(&w, vj);
                h[j][k] = hjk;
                axpy(-hjk, vj, &mut w);
            }
            let hk1 = norm2(&w);
            h[k + 1][k] = hk1;
            // Apply existing rotations to the new column.
            for j in 0..k {
                let t = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
                h[j + 1][k] = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
                h[j][k] = t;
            }
            // New rotation annihilating h[k+1][k].
            let denom = (h[k][k] * h[k][k] + hk1 * hk1).sqrt();
            if denom < 1e-300 {
                k_used = k + 1;
                break;
            }
            cs[k] = h[k][k] / denom;
            sn[k] = hk1 / denom;
            h[k][k] = denom;
            h[k + 1][k] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];
            k_used = k + 1;
            if g[k + 1].abs() <= tol {
                break;
            }
            if hk1 < 1e-300 {
                break; // lucky breakdown
            }
            v.push(w.iter().map(|wi| wi / hk1).collect());
        }
        // Back-substitute y from the triangular system, x += M⁻¹ (V y).
        let mut y = vec![0.0f64; k_used];
        for i in (0..k_used).rev() {
            let mut s = g[i];
            for j in i + 1..k_used {
                s -= h[i][j] * y[j];
            }
            y[i] = s / h[i][i];
        }
        let mut update = vec![0.0; n];
        for (j, &yj) in y.iter().enumerate() {
            axpy(yj, &v[j], &mut update);
        }
        m.apply(&update, &mut z);
        for (xi, zi) in x.iter_mut().zip(&z) {
            *xi += zi;
        }
    }
}

/// Chebyshev polynomial smoother/solver for SPD operators with spectrum
/// inside `[lambda_min, lambda_max]`: applies a degree-`degree` Chebyshev
/// iteration to `x` (a standard multigrid smoother).
///
/// A smoother has no convergence tolerance, so the returned report means:
/// `iterations` is the degree actually applied, `residual` the final
/// residual 2-norm, and `converged`/`diverged` report whether the sweep was
/// numerically sound — a non-finite residual (NaN/Inf in the operator or
/// data) flips `diverged` and aborts the remaining applications early.
pub fn chebyshev<A: LinOp>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    lambda_min: f64,
    lambda_max: f64,
    degree: usize,
) -> KrylovResult {
    assert!(lambda_max > lambda_min && lambda_min > 0.0);
    let n = a.size();
    let theta = 0.5 * (lambda_max + lambda_min);
    let delta = 0.5 * (lambda_max - lambda_min);
    let sigma = theta / delta;
    let mut rho_old = 1.0 / sigma;
    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let mut d: Vec<f64> = r.iter().map(|ri| ri / theta).collect();
    for k in 0..degree {
        axpy(1.0, &d, x);
        // r -= A d
        let mut ad = vec![0.0; n];
        a.apply(&d, &mut ad);
        axpy(-1.0, &ad, &mut r);
        let rn = norm2(&r);
        if !rn.is_finite() {
            return KrylovResult::divergence(k + 1, rn);
        }
        let rho = 1.0 / (2.0 * sigma - rho_old);
        for (di, ri) in d.iter_mut().zip(&r) {
            *di = rho * rho_old * *di + 2.0 * rho / delta * ri;
        }
        rho_old = rho;
    }
    KrylovResult::success(degree, norm2(&r))
}

/// Estimates the largest eigenvalue of an SPD operator by power iteration
/// (for Chebyshev bounds).
pub fn lambda_max_estimate<A: LinOp>(a: &A, iters: usize, seed: u64) -> f64 {
    let n = a.size();
    // Deterministic pseudo-random start vector (splitmix64), so the
    // estimate is reproducible without pulling in an RNG dependency.
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect();
    let mut av = vec![0.0; n];
    let mut lambda = 1.0;
    for _ in 0..iters {
        let nv = norm2(&v).max(1e-300);
        for vi in v.iter_mut() {
            *vi /= nv;
        }
        a.apply(&v, &mut av);
        lambda = dot(&v, &av);
        std::mem::swap(&mut v, &mut av);
    }
    lambda.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;
    use crate::krylov::IdentityPrecond;

    fn advdiff(n: usize) -> crate::csr::CsrMatrix {
        let mut b = CooBuilder::new(n);
        for i in 0..n {
            b.add(i, i, 3.0);
            if i > 0 {
                b.add(i, i - 1, -1.8);
            }
            if i + 1 < n {
                b.add(i, i + 1, -0.7);
            }
        }
        b.build()
    }

    fn laplace(n: usize) -> crate::csr::CsrMatrix {
        let mut b = CooBuilder::new(n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn gmres_solves_nonsymmetric() {
        let n = 150;
        let a = advdiff(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        let mut x = vec![0.0; n];
        let res = gmres(&a, &b, &mut x, &IdentityPrecond, 30, 1e-10, 0.0, 2000);
        assert!(res.converged, "{res:?}");
        let mut r = vec![0.0; n];
        a.matvec(&x, &mut r);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        assert!(norm2(&r) < 1e-7, "{}", norm2(&r));
    }

    #[test]
    fn gmres_with_jacobi_preconditioner() {
        let n = 100;
        let a = advdiff(n);
        let pre = crate::krylov::JacobiPrecond::from_matrix(&a);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = gmres(&a, &b, &mut x, &pre, 20, 1e-10, 0.0, 2000);
        assert!(res.converged);
    }

    #[test]
    fn gmres_restart_still_converges() {
        // Tiny restart forces several outer cycles.
        let n = 80;
        let a = laplace(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = gmres(&a, &b, &mut x, &IdentityPrecond, 5, 1e-8, 0.0, 5000);
        assert!(res.converged, "{res:?}");
    }

    #[test]
    fn chebyshev_smooths_high_frequencies() {
        let n = 64;
        let a = laplace(n);
        let lmax = lambda_max_estimate(&a, 50, 1);
        assert!(
            lmax > 3.5 && lmax < 4.1,
            "1D Laplace lambda_max ~ 4: {lmax}"
        );
        // Smoother reduces the residual of a rough initial guess.
        let b = vec![0.0; n];
        let mut x: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r0 = {
            let mut ax = vec![0.0; n];
            a.matvec(&x, &mut ax);
            norm2(&ax)
        };
        let rep = chebyshev(&a, &b, &mut x, lmax / 10.0, lmax * 1.05, 6);
        assert!(rep.converged && !rep.diverged, "{rep:?}");
        assert_eq!(rep.iterations, 6);
        let r1 = {
            let mut ax = vec![0.0; n];
            a.matvec(&x, &mut ax);
            norm2(&ax)
        };
        assert!(
            r1 < 0.2 * r0,
            "chebyshev must crush the rough mode: {r0} -> {r1}"
        );
    }

    #[test]
    fn gmres_flags_divergence_on_nan_rhs() {
        let n = 20;
        let a = laplace(n);
        let mut b = vec![1.0; n];
        b[3] = f64::NAN;
        let mut x = vec![0.0; n];
        let res = gmres(&a, &b, &mut x, &IdentityPrecond, 10, 1e-10, 0.0, 100);
        assert!(res.diverged, "{res:?}");
        assert!(!res.converged);
    }

    #[test]
    fn chebyshev_flags_divergence_on_nan_operator() {
        // Operator that injects NaN: y = NaN * x.
        let op = (8usize, |_x: &[f64], y: &mut [f64]| {
            y.fill(f64::NAN);
        });
        let b = vec![1.0; 8];
        let mut x = vec![1.0; 8];
        let res = chebyshev(&op, &b, &mut x, 0.1, 2.0, 5);
        assert!(res.diverged, "{res:?}");
        assert!(res.iterations <= 5);
    }
}
