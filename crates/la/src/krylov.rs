//! Krylov solvers (CG, BiCGStab) over abstract operators, with Jacobi and
//! overlapping Additive-Schwarz preconditioners — the `-ksp_type bcgs
//! -pc_type asm` configuration of the paper's Appendix B.2.

use crate::csr::CsrMatrix;
use crate::dense::LuFactors;
use crate::vector::{axpy, dot};

/// An abstract linear operator `y = A x` — implemented both by assembled
/// [`CsrMatrix`] and by the matrix-free traversal MATVEC of `carve-core`.
pub trait LinOp {
    fn size(&self) -> usize;
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// Batched inner products for the Krylov solvers: `out[k] = pairs[k].0 ·
/// pairs[k].1`. The solvers group the reductions of one iteration into the
/// fewest possible batches (CG: 2, BiCGStab: 4) so a distributed
/// implementation can ride each batch on a *single* fused all-reduce
/// message instead of one per dot/norm; `carve-core`'s `DistReduce` does
/// exactly that, masking non-owned entries before the global sum.
pub trait Reduce {
    fn dots(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]);
}

/// Sequential reduction: plain local dot products. With this reducer,
/// [`cg_with`] / [`bicgstab_with`] are bitwise identical to [`cg`] /
/// [`bicgstab`] (which are thin wrappers over it).
pub struct LocalReduce;

impl Reduce for LocalReduce {
    fn dots(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
        for (o, (u, v)) in out.iter_mut().zip(pairs) {
            *o = dot(u, v);
        }
    }
}

/// Single inner product through a [`Reduce`] (still one message, just not
/// fused with anything).
fn rdot<R: Reduce + ?Sized>(rd: &R, u: &[f64], v: &[f64]) -> f64 {
    let mut out = [0.0];
    rd.dots(&[(u, v)], &mut out);
    out[0]
}

impl<A: LinOp + ?Sized> LinOp for &A {
    fn size(&self) -> usize {
        (**self).size()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y)
    }
}

impl<F: Fn(&[f64], &mut [f64])> LinOp for (usize, F) {
    fn size(&self) -> usize {
        self.0
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (self.1)(x, y)
    }
}

/// A preconditioner: `z = M⁻¹ r`.
pub trait Precond {
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

impl<P: Precond + ?Sized> Precond for &P {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        (**self).apply(r, z)
    }
}

/// No preconditioning.
pub struct IdentityPrecond;

impl Precond for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioner.
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    pub fn new(diag: &[f64]) -> Self {
        Self {
            inv_diag: diag
                .iter()
                .map(|&d| if d.abs() > 1e-300 { 1.0 / d } else { 1.0 })
                .collect(),
        }
    }

    pub fn from_matrix(a: &CsrMatrix) -> Self {
        Self::new(&a.diagonal())
    }
}

impl Precond for JacobiPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Restricted overlapping Additive Schwarz: the index range is split into
/// blocks with `overlap` shared indices; each block is solved exactly with a
/// dense LU, and only the *owned* (non-overlap) part of each local solution
/// is written back (restricted-ASM avoids double counting).
pub struct AsmPrecond {
    blocks: Vec<AsmBlock>,
    n: usize,
}

struct AsmBlock {
    idx: Vec<usize>,
    own_start: usize,
    own_end: usize,
    lu: LuFactors,
}

impl AsmPrecond {
    /// Builds from an assembled matrix, with `nblocks` contiguous index
    /// blocks and the given overlap width.
    pub fn new(a: &CsrMatrix, nblocks: usize, overlap: usize) -> Self {
        let n = a.n;
        let nblocks = nblocks.clamp(1, n.max(1));
        let mut blocks = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let own_lo = b * n / nblocks;
            let own_hi = (b + 1) * n / nblocks;
            if own_lo >= own_hi {
                continue;
            }
            let lo = own_lo.saturating_sub(overlap);
            let hi = (own_hi + overlap).min(n);
            let idx: Vec<usize> = (lo..hi).collect();
            let dense = a.dense_block(&idx);
            let lu = dense.lu().unwrap_or_else(|_| regularized_lu(&dense));
            blocks.push(AsmBlock {
                own_start: own_lo - lo,
                own_end: own_hi - lo,
                idx,
                lu,
            });
        }
        Self { blocks, n }
    }
}

fn regularized_lu(a: &crate::dense::DenseMatrix) -> LuFactors {
    // Fall back to A + eps I if a block is singular (can happen with
    // constrained rows); preconditioners only need to be invertible.
    let mut m = a.clone();
    let scale = a.norm1().max(1.0);
    for i in 0..m.rows {
        m[(i, i)] += 1e-10 * scale;
    }
    m.lu().expect("regularized block is nonsingular")
}

impl Precond for AsmPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n);
        z.fill(0.0);
        let mut local = Vec::new();
        for blk in &self.blocks {
            local.clear();
            local.extend(blk.idx.iter().map(|&g| r[g]));
            blk.lu.solve(&mut local);
            for li in blk.own_start..blk.own_end {
                z[blk.idx[li]] = local[li];
            }
        }
    }
}

/// Iteration report for the Krylov solvers.
#[derive(Clone, Copy, Debug)]
pub struct KrylovResult {
    pub converged: bool,
    /// Iterations performed up to the stop — including a divergence stop, so
    /// an escalation policy knows *where* the iteration went bad.
    pub iterations: usize,
    /// Final absolute residual 2-norm.
    pub residual: f64,
    /// The iteration produced a non-finite residual (NaN/Inf): the operator,
    /// right-hand side, or preconditioner injected garbage. Distinct from the
    /// benign "ran out of iterations / breakdown" non-convergence — a
    /// diverged solve must not be retried with more iterations.
    pub diverged: bool,
    /// The last *finite* residual norm observed before the stop. Equal to
    /// `residual` for converged/stalled results; for a diverged result it is
    /// the residual of the final healthy iteration (None when the very first
    /// residual was already non-finite), so error reports and escalation
    /// decisions keep a meaningful magnitude.
    pub last_finite_residual: Option<f64>,
}

impl KrylovResult {
    /// Converged stop.
    pub fn success(iterations: usize, residual: f64) -> Self {
        KrylovResult {
            converged: true,
            iterations,
            residual,
            diverged: false,
            last_finite_residual: residual.is_finite().then_some(residual),
        }
    }

    /// Benign non-convergence (breakdown or iteration cap) — unless the
    /// residual itself is non-finite, which upgrades it to divergence.
    pub fn stalled(iterations: usize, residual: f64) -> Self {
        KrylovResult {
            converged: false,
            iterations,
            residual,
            diverged: !residual.is_finite(),
            last_finite_residual: residual.is_finite().then_some(residual),
        }
    }

    /// Definite divergence: NaN/Inf contaminated the iteration.
    pub fn divergence(iterations: usize, residual: f64) -> Self {
        KrylovResult {
            converged: false,
            iterations,
            residual,
            diverged: true,
            last_finite_residual: residual.is_finite().then_some(residual),
        }
    }

    /// Attaches the last healthy residual norm to a (typically diverged)
    /// result, keeping any finite value already recorded.
    pub fn with_last_finite(mut self, rn: f64) -> Self {
        if self.last_finite_residual.is_none() && rn.is_finite() {
            self.last_finite_residual = Some(rn);
        }
        self
    }
}

/// Reusable pool of solver scratch vectors. The Krylov drivers allocate a
/// handful of length-`n` work buffers per solve (`r`, `z`, `p`, `Ap`, and
/// the per-RHS panels of the block driver); a serving loop that solves the
/// same cached system over and over pays that allocation on every request.
/// Handing the same `KrylovScratch` to [`cg_with_scratch`] /
/// [`crate::block::block_cg_scratch`] recycles the buffers instead — the
/// pool is LIFO, so back-to-back same-size solves reuse the exact
/// allocations (pointer-stable, asserted by the warm-path tests).
///
/// Buffers are zero-filled on loan, so a scratch-backed solve is bitwise
/// identical to the allocating one.
#[derive(Default)]
pub struct KrylovScratch {
    pool: Vec<Vec<f64>>,
}

impl KrylovScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently parked in the pool (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Loans the most recently parked buffer (or a fresh one), zero-filled
    /// to length `n` — so a pooled loan is bitwise indistinguishable from a
    /// fresh `vec![0.0; n]`.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        let mut v = self.pool.pop().unwrap_or_default();
        v.clear();
        v.resize(n, 0.0);
        v
    }

    /// Parks a buffer for the next loan (LIFO).
    pub fn put(&mut self, v: Vec<f64>) {
        self.pool.push(v);
    }
}

/// Internal loan source: a caller-held pool, or fresh allocations for the
/// scratch-less entry points (which must stay allocation-compatible with
/// their historical behavior).
pub(crate) enum Lease<'s> {
    Pool(&'s mut KrylovScratch),
    Fresh,
}

impl Lease<'_> {
    pub(crate) fn take(&mut self, n: usize) -> Vec<f64> {
        match self {
            Lease::Pool(s) => s.take(n),
            Lease::Fresh => vec![0.0; n],
        }
    }

    pub(crate) fn put(&mut self, v: Vec<f64>) {
        if let Lease::Pool(s) = self {
            s.put(v);
        }
    }
}

/// Environment override for the checkpoint cadence of the checkpointed
/// Krylov drivers (iterations between snapshots; default 25).
pub const CKPT_EVERY_ENV: &str = "CARVE_CKPT_EVERY";

const DEFAULT_CKPT_EVERY: usize = 25;

/// Checkpoint cadence: `CARVE_CKPT_EVERY` when set to a positive integer,
/// 25 otherwise.
pub fn default_ckpt_every() -> usize {
    std::env::var(CKPT_EVERY_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CKPT_EVERY)
}

/// Restartable snapshot of a Krylov iteration: enough state to resume the
/// solve (or hand it to a different method) after a rank kill or divergence,
/// plus a residual-history tail for diagnostics. Serializable via
/// `carve-io::json` for cross-process restart.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveCheckpoint {
    /// Solver that produced the snapshot (`"cg"` / `"bicgstab"`).
    pub method: String,
    /// Global iteration index at the snapshot (includes the resume offset,
    /// so a restarted solve keeps counting where the dead one stopped).
    pub iteration: usize,
    /// Residual 2-norm at the snapshot.
    pub residual: f64,
    /// Current iterate.
    pub x: Vec<f64>,
    /// Current residual vector `b - A x`.
    pub r: Vec<f64>,
    /// Up to the last 8 residual norms (oldest first, ending at `residual`).
    pub residual_tail: Vec<f64>,
}

/// Checkpoint cadence driver for [`cg_checkpointed`] / [`bicgstab_checkpointed`].
///
/// Observes every iteration's residual (cheap: a bounded tail push),
/// snapshots `x`/`r` every `every` iterations, and optionally streams each
/// snapshot into a caller-supplied sink (e.g. a cross-attempt store that
/// survives a killed SPMD cluster). Checkpointing never adds reductions or
/// changes the iteration arithmetic — the bitwise history is identical to
/// the un-checkpointed solver.
pub struct Checkpointer<'a> {
    every: usize,
    offset: usize,
    tail: Vec<f64>,
    latest: Option<SolveCheckpoint>,
    #[allow(clippy::type_complexity)]
    sink: Option<Box<dyn FnMut(&SolveCheckpoint) + 'a>>,
}

const CKPT_TAIL: usize = 8;

impl<'a> Checkpointer<'a> {
    /// Snapshot every `every` iterations (clamped to ≥ 1).
    pub fn new(every: usize) -> Self {
        Checkpointer {
            every: every.max(1),
            offset: 0,
            tail: Vec::with_capacity(CKPT_TAIL),
            latest: None,
            sink: None,
        }
    }

    /// Cadence from `CARVE_CKPT_EVERY` (default 25).
    pub fn from_env() -> Self {
        Checkpointer::new(default_ckpt_every())
    }

    /// Streams every snapshot into `sink` as it is taken (in addition to
    /// keeping [`Checkpointer::latest`]).
    pub fn with_sink(mut self, sink: impl FnMut(&SolveCheckpoint) + 'a) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Seeds the iteration offset and residual tail from a prior snapshot,
    /// so a restarted solve keeps a monotonic global iteration count. The
    /// caller is responsible for starting the solve from `from.x`.
    pub fn resume_from(mut self, from: &SolveCheckpoint) -> Self {
        self.offset = from.iteration;
        self.tail = from.residual_tail.clone();
        self
    }

    /// Iterations already performed by prior attempts (the resume offset).
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The most recent snapshot, if any iteration reached the cadence.
    pub fn latest(&self) -> Option<&SolveCheckpoint> {
        self.latest.as_ref()
    }

    /// Consumes the checkpointer, yielding the most recent snapshot.
    pub fn into_latest(self) -> Option<SolveCheckpoint> {
        self.latest
    }

    /// Records one iteration: pushes the residual onto the bounded tail and,
    /// at the cadence, snapshots the full solver state. Non-finite residuals
    /// are never snapshotted (a checkpoint must always be a healthy restart
    /// point).
    fn observe(&mut self, method: &str, it: usize, rn: f64, x: &[f64], r: &[f64]) {
        if !rn.is_finite() {
            return;
        }
        if self.tail.len() == CKPT_TAIL {
            self.tail.remove(0);
        }
        self.tail.push(rn);
        if it.is_multiple_of(self.every) {
            let ckpt = SolveCheckpoint {
                method: method.to_string(),
                iteration: self.offset + it,
                residual: rn,
                x: x.to_vec(),
                r: r.to_vec(),
                residual_tail: self.tail.clone(),
            };
            if let Some(sink) = &mut self.sink {
                sink(&ckpt);
            }
            self.latest = Some(ckpt);
        }
    }
}

/// Preconditioned conjugate gradients for SPD operators. Stops when
/// `‖r‖ <= rtol * ‖b‖ + atol`.
pub fn cg<A: LinOp, M: Precond>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
) -> KrylovResult {
    cg_with(a, b, x, m, rtol, atol, max_iter, &LocalReduce)
}

/// CG with an explicit [`Reduce`] backend. The per-iteration reductions are
/// fused into two batches: `(p·Ap)` and the paired `(r·z, r·r)` after the
/// preconditioner — the convergence norm reuses the `r·r` from the previous
/// batch rather than issuing its own reduction, so a distributed run pays 2
/// messages per iteration instead of 3. With [`LocalReduce`] the arithmetic
/// is bitwise identical to the unfused history of [`cg`].
#[allow(clippy::too_many_arguments)]
pub fn cg_with<A: LinOp, M: Precond, R: Reduce + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
    rd: &R,
) -> KrylovResult {
    cg_impl(a, b, x, m, rtol, atol, max_iter, rd, None, Lease::Fresh)
}

/// CG with periodic [`SolveCheckpoint`] snapshots: bitwise identical to
/// [`cg_with`] (checkpointing adds no reductions and touches no iteration
/// arithmetic), but every `ck.every` iterations the current `(x, r)` state
/// is snapshotted for restart after a fault.
#[allow(clippy::too_many_arguments)]
pub fn cg_checkpointed<A: LinOp, M: Precond, R: Reduce + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
    rd: &R,
    ck: &mut Checkpointer<'_>,
) -> KrylovResult {
    cg_impl(a, b, x, m, rtol, atol, max_iter, rd, Some(ck), Lease::Fresh)
}

/// [`cg_with`] drawing its work vectors from a caller-held
/// [`KrylovScratch`] pool instead of allocating: the serving path's warm
/// solves run allocation-free for the length-`n` buffers. Bitwise identical
/// to [`cg_with`].
#[allow(clippy::too_many_arguments)]
pub fn cg_with_scratch<A: LinOp, M: Precond, R: Reduce + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
    rd: &R,
    scratch: &mut KrylovScratch,
) -> KrylovResult {
    cg_impl(
        a,
        b,
        x,
        m,
        rtol,
        atol,
        max_iter,
        rd,
        None,
        Lease::Pool(scratch),
    )
}

#[allow(clippy::too_many_arguments)]
fn cg_impl<A: LinOp, M: Precond, R: Reduce + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
    rd: &R,
    ck: Option<&mut Checkpointer<'_>>,
    mut lease: Lease<'_>,
) -> KrylovResult {
    let n = a.size();
    let mut r = lease.take(n);
    let mut z = lease.take(n);
    let mut p = lease.take(n);
    let mut ap = lease.take(n);
    let res = cg_body(
        a,
        b,
        x,
        m,
        rtol,
        atol,
        max_iter,
        rd,
        ck,
        (&mut r, &mut z, &mut p, &mut ap),
    );
    // LIFO restore in reverse loan order: the next same-size solve gets the
    // same buffers back in the same roles (pointer stability).
    lease.put(ap);
    lease.put(p);
    lease.put(z);
    lease.put(r);
    res
}

#[allow(clippy::too_many_arguments)]
fn cg_body<A: LinOp, M: Precond, R: Reduce + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
    rd: &R,
    mut ck: Option<&mut Checkpointer<'_>>,
    bufs: (&mut Vec<f64>, &mut Vec<f64>, &mut Vec<f64>, &mut Vec<f64>),
) -> KrylovResult {
    let n = a.size();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let (r, z, p, ap) = bufs;
    a.apply(x, r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let bnorm = rdot(rd, b, b).sqrt().max(1e-300);
    let tol = rtol * bnorm + atol;
    m.apply(r, z);
    p.copy_from_slice(z);
    let mut pair = [0.0; 2];
    rd.dots(&[(r, z), (r, r)], &mut pair);
    let (mut rz, mut rn2) = (pair[0], pair[1]);
    let mut last_finite_rn = f64::NAN;
    for it in 0..max_iter {
        let rn = rn2.sqrt();
        if !rn.is_finite() {
            return KrylovResult::divergence(it, rn).with_last_finite(last_finite_rn);
        }
        last_finite_rn = rn;
        if let Some(ck) = ck.as_deref_mut() {
            ck.observe("cg", it, rn, x, r);
        }
        if rn <= tol {
            return KrylovResult::success(it, rn);
        }
        a.apply(p, ap);
        let pap = rdot(rd, p, ap);
        if pap.abs() < 1e-300 || !pap.is_finite() {
            return KrylovResult::stalled(it, rn);
        }
        let alpha = rz / pap;
        axpy(alpha, p, x);
        axpy(-alpha, ap, r);
        m.apply(r, z);
        rd.dots(&[(r, z), (r, r)], &mut pair);
        let beta = pair[0] / rz;
        rz = pair[0];
        rn2 = pair[1];
        for (pi, zi) in p.iter_mut().zip(z.iter()) {
            *pi = zi + beta * *pi;
        }
    }
    let rn = rn2.sqrt();
    KrylovResult {
        converged: rn <= tol,
        iterations: max_iter,
        residual: rn,
        diverged: !rn.is_finite(),
        last_finite_residual: if rn.is_finite() {
            Some(rn)
        } else {
            last_finite_rn.is_finite().then_some(last_finite_rn)
        },
    }
}

/// Preconditioned BiCGStab for general (nonsymmetric) operators — the
/// paper's `-ksp_type bcgs`.
pub fn bicgstab<A: LinOp, M: Precond>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
) -> KrylovResult {
    bicgstab_with(a, b, x, m, rtol, atol, max_iter, &LocalReduce)
}

/// BiCGStab with an explicit [`Reduce`] backend. Per iteration the six
/// reductions of the textbook loop are fused into four batches: the paired
/// `(r·r, r0·r)` at the top, `r0·v`, the intermediate `s`-norm, and the
/// paired `(t·t, t·r)` for the stabilizer — 4 messages instead of 6 on a
/// distributed run. With [`LocalReduce`] the arithmetic is bitwise
/// identical to the unfused history of [`bicgstab`].
#[allow(clippy::too_many_arguments)]
pub fn bicgstab_with<A: LinOp, M: Precond, R: Reduce + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
    rd: &R,
) -> KrylovResult {
    bicgstab_impl(a, b, x, m, rtol, atol, max_iter, rd, None)
}

/// BiCGStab with periodic [`SolveCheckpoint`] snapshots; see
/// [`cg_checkpointed`] for the contract.
#[allow(clippy::too_many_arguments)]
pub fn bicgstab_checkpointed<A: LinOp, M: Precond, R: Reduce + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
    rd: &R,
    ck: &mut Checkpointer<'_>,
) -> KrylovResult {
    bicgstab_impl(a, b, x, m, rtol, atol, max_iter, rd, Some(ck))
}

#[allow(clippy::too_many_arguments)]
fn bicgstab_impl<A: LinOp, M: Precond, R: Reduce + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    rtol: f64,
    atol: f64,
    max_iter: usize,
    rd: &R,
    mut ck: Option<&mut Checkpointer<'_>>,
) -> KrylovResult {
    let n = a.size();
    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let bnorm = rdot(rd, b, b).sqrt().max(1e-300);
    let tol = rtol * bnorm + atol;
    let r0 = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut shat = vec![0.0; n];
    let mut t = vec![0.0; n];
    let mut pair = [0.0; 2];
    let mut last_finite_rn = f64::NAN;
    for it in 0..max_iter {
        rd.dots(&[(&r, &r), (&r0, &r)], &mut pair);
        let rn = pair[0].sqrt();
        let rho_new = pair[1];
        if !rn.is_finite() {
            return KrylovResult::divergence(it, rn).with_last_finite(last_finite_rn);
        }
        last_finite_rn = rn;
        if let Some(ck) = ck.as_deref_mut() {
            ck.observe("bicgstab", it, rn, x, &r);
        }
        if rn <= tol {
            return KrylovResult::success(it, rn);
        }
        if rho_new.abs() < 1e-300 || !rho_new.is_finite() {
            return KrylovResult::stalled(it, rn);
        }
        if it == 0 {
            p.copy_from_slice(&r);
        } else {
            let beta = (rho_new / rho) * (alpha / omega);
            for k in 0..n {
                p[k] = r[k] + beta * (p[k] - omega * v[k]);
            }
        }
        rho = rho_new;
        m.apply(&p, &mut phat);
        a.apply(&phat, &mut v);
        let r0v = rdot(rd, &r0, &v);
        if r0v.abs() < 1e-300 || !r0v.is_finite() {
            return KrylovResult::stalled(it, rn);
        }
        alpha = rho / r0v;
        // s = r - alpha v  (reuse r)
        axpy(-alpha, &v, &mut r);
        let sn = rdot(rd, &r, &r).sqrt();
        if !sn.is_finite() {
            return KrylovResult::divergence(it + 1, sn).with_last_finite(last_finite_rn);
        }
        last_finite_rn = sn;
        if sn <= tol {
            axpy(alpha, &phat, x);
            return KrylovResult::success(it + 1, sn);
        }
        m.apply(&r, &mut shat);
        a.apply(&shat, &mut t);
        rd.dots(&[(&t, &t), (&t, &r)], &mut pair);
        let tt = pair[0];
        if tt.abs() < 1e-300 || !tt.is_finite() {
            return KrylovResult::stalled(it, sn);
        }
        omega = pair[1] / tt;
        axpy(alpha, &phat, x);
        axpy(omega, &shat, x);
        axpy(-omega, &t, &mut r);
        if omega.abs() < 1e-300 {
            return KrylovResult::stalled(it + 1, rdot(rd, &r, &r).sqrt());
        }
    }
    let rn = rdot(rd, &r, &r).sqrt();
    KrylovResult {
        converged: rn <= tol,
        iterations: max_iter,
        residual: rn,
        diverged: !rn.is_finite(),
        last_finite_residual: if rn.is_finite() {
            Some(rn)
        } else {
            last_finite_rn.is_finite().then_some(last_finite_rn)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;
    use crate::vector::norm2;

    /// 1D Laplacian (tridiagonal SPD).
    fn laplace_1d(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    /// Nonsymmetric advection-diffusion-like matrix.
    fn advdiff_1d(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n);
        for i in 0..n {
            b.add(i, i, 3.0);
            if i > 0 {
                b.add(i, i - 1, -2.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -0.5);
            }
        }
        b.build()
    }

    fn check_solution(a: &CsrMatrix, x: &[f64], b: &[f64], tol: f64) {
        let mut r = vec![0.0; a.n];
        a.matvec(x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri -= bi;
        }
        assert!(norm2(&r) < tol, "residual {}", norm2(&r));
    }

    #[test]
    fn cg_solves_laplace() {
        let a = laplace_1d(100);
        let b: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.1).sin()).collect();
        let mut x = vec![0.0; 100];
        let res = cg(&a, &b, &mut x, &IdentityPrecond, 1e-10, 0.0, 1000);
        assert!(res.converged, "{res:?}");
        check_solution(&a, &x, &b, 1e-7);
    }

    #[test]
    fn jacobi_precond_reduces_iterations_on_scaled_system() {
        // Badly diagonally scaled SPD system.
        let n = 80;
        let mut bld = CooBuilder::new(n);
        for i in 0..n {
            let s = 10.0f64.powi((i % 5) as i32);
            bld.add(i, i, 2.0 * s);
            if i > 0 {
                bld.add(i, i - 1, -0.5);
            }
            if i + 1 < n {
                bld.add(i, i + 1, -0.5);
            }
        }
        let a = bld.build();
        let b = vec![1.0; n];
        let mut x1 = vec![0.0; n];
        let r1 = cg(&a, &b, &mut x1, &IdentityPrecond, 1e-10, 0.0, 10_000);
        let mut x2 = vec![0.0; n];
        let jac = JacobiPrecond::from_matrix(&a);
        let r2 = cg(&a, &b, &mut x2, &jac, 1e-10, 0.0, 10_000);
        assert!(r2.converged);
        assert!(
            r2.iterations < r1.iterations,
            "jacobi {} vs none {}",
            r2.iterations,
            r1.iterations
        );
        check_solution(&a, &x2, &b, 1e-6);
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        let a = advdiff_1d(120);
        let b: Vec<f64> = (0..120).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut x = vec![0.0; 120];
        let res = bicgstab(&a, &b, &mut x, &IdentityPrecond, 1e-10, 0.0, 2000);
        assert!(res.converged, "{res:?}");
        check_solution(&a, &x, &b, 1e-6);
    }

    #[test]
    fn asm_precond_accelerates_bicgstab() {
        let a = laplace_1d(200);
        let b = vec![1.0; 200];
        let mut x_plain = vec![0.0; 200];
        let r_plain = bicgstab(&a, &b, &mut x_plain, &IdentityPrecond, 1e-10, 0.0, 5000);
        let asm = AsmPrecond::new(&a, 8, 4);
        let mut x_asm = vec![0.0; 200];
        let r_asm = bicgstab(&a, &b, &mut x_asm, &asm, 1e-10, 0.0, 5000);
        assert!(r_asm.converged);
        assert!(
            r_asm.iterations < r_plain.iterations,
            "asm {} vs plain {}",
            r_asm.iterations,
            r_plain.iterations
        );
        check_solution(&a, &x_asm, &b, 1e-6);
    }

    #[test]
    fn asm_single_block_is_direct_solve() {
        let a = laplace_1d(30);
        let asm = AsmPrecond::new(&a, 1, 0);
        let b = vec![1.0; 30];
        let mut z = vec![0.0; 30];
        asm.apply(&b, &mut z);
        check_solution(&a, &z, &b, 1e-9);
    }

    #[test]
    fn cg_and_bicgstab_flag_divergence_on_nan() {
        let a = laplace_1d(30);
        let mut b = vec![1.0; 30];
        b[7] = f64::NAN;
        let mut x = vec![0.0; 30];
        let res = cg(&a, &b, &mut x, &IdentityPrecond, 1e-10, 0.0, 100);
        assert!(res.diverged && !res.converged, "{res:?}");
        let mut x = vec![0.0; 30];
        let res = bicgstab(&a, &b, &mut x, &IdentityPrecond, 1e-10, 0.0, 100);
        assert!(res.diverged && !res.converged, "{res:?}");
    }

    #[test]
    fn stall_is_not_divergence() {
        // Iteration cap with a finite residual: non-converged but not diverged.
        let a = laplace_1d(200);
        let b = vec![1.0; 200];
        let mut x = vec![0.0; 200];
        let res = cg(&a, &b, &mut x, &IdentityPrecond, 1e-14, 0.0, 3);
        assert!(!res.converged && !res.diverged, "{res:?}");
        assert!(res.residual.is_finite());
    }

    /// Delegates to [`LocalReduce`] while recording every batch size, so
    /// tests can assert both bitwise equivalence and message fusion.
    struct CountingReduce {
        batches: std::cell::RefCell<Vec<usize>>,
    }

    impl CountingReduce {
        fn new() -> Self {
            CountingReduce {
                batches: std::cell::RefCell::new(Vec::new()),
            }
        }
    }

    impl Reduce for CountingReduce {
        fn dots(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
            self.batches.borrow_mut().push(pairs.len());
            LocalReduce.dots(pairs, out);
        }
    }

    #[test]
    fn cg_with_fuses_reductions_and_stays_bitwise_identical() {
        let a = laplace_1d(100);
        let b: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.1).sin()).collect();
        let mut x_plain = vec![0.0; 100];
        let res_plain = cg(&a, &b, &mut x_plain, &IdentityPrecond, 1e-10, 0.0, 1000);
        let rd = CountingReduce::new();
        let mut x_fused = vec![0.0; 100];
        let res_fused = cg_with(
            &a,
            &b,
            &mut x_fused,
            &IdentityPrecond,
            1e-10,
            0.0,
            1000,
            &rd,
        );
        assert_eq!(res_plain.iterations, res_fused.iterations);
        assert_eq!(res_plain.residual.to_bits(), res_fused.residual.to_bits());
        for (p, f) in x_plain.iter().zip(&x_fused) {
            assert_eq!(p.to_bits(), f.to_bits());
        }
        let batches = rd.batches.borrow();
        assert!(batches.contains(&2), "no fused batch in {batches:?}");
        // Setup: bnorm + initial (r·z, r·r). Each full iteration: p·Ap plus
        // one fused pair — 2 messages, not the 3 of the unfused loop.
        assert_eq!(batches.len(), 2 + 2 * res_fused.iterations);
    }

    #[test]
    fn bicgstab_with_fuses_reductions_and_stays_bitwise_identical() {
        let a = advdiff_1d(120);
        let b: Vec<f64> = (0..120).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut x_plain = vec![0.0; 120];
        let res_plain = bicgstab(&a, &b, &mut x_plain, &IdentityPrecond, 1e-10, 0.0, 2000);
        let rd = CountingReduce::new();
        let mut x_fused = vec![0.0; 120];
        let res_fused = bicgstab_with(
            &a,
            &b,
            &mut x_fused,
            &IdentityPrecond,
            1e-10,
            0.0,
            2000,
            &rd,
        );
        assert_eq!(res_plain.iterations, res_fused.iterations);
        assert_eq!(res_plain.residual.to_bits(), res_fused.residual.to_bits());
        for (p, f) in x_plain.iter().zip(&x_fused) {
            assert_eq!(p.to_bits(), f.to_bits());
        }
        // Setup: bnorm. Each full iteration: fused (r·r, r0·r), r0·v, s-norm,
        // fused (t·t, t·r) — 4 messages, not the 6 of the unfused loop.
        // Depending on whether the run converges at the top-of-loop check or
        // the s-norm check, the final partial iteration adds 1 or 3 batches.
        let batches = rd.batches.borrow();
        let it = res_fused.iterations;
        assert!(it > 1, "test needs a multi-iteration solve, got {it}");
        let top_exit = 2 + 4 * it;
        let snorm_exit = 4 * it;
        assert!(
            batches.len() == top_exit || batches.len() == snorm_exit,
            "batches {} vs expected {top_exit} or {snorm_exit}",
            batches.len()
        );
        assert!(batches.iter().filter(|&&n| n == 2).count() >= it);
    }

    #[test]
    fn diverged_result_keeps_iteration_and_last_finite_residual() {
        // Mid-flight divergence: the point of failure and the last healthy
        // residual magnitude both survive into the report.
        let res = KrylovResult::divergence(17, f64::NAN).with_last_finite(0.125);
        assert!(res.diverged);
        assert_eq!(res.iterations, 17);
        assert_eq!(res.last_finite_residual, Some(0.125));
        // A non-finite "last finite" candidate is rejected.
        let res = KrylovResult::divergence(3, f64::NAN).with_last_finite(f64::INFINITY);
        assert_eq!(res.last_finite_residual, None);
        // End-to-end: NaN contaminates the very first residual — there was
        // never a healthy iteration to report.
        let a = laplace_1d(30);
        let mut b = vec![1.0; 30];
        b[7] = f64::NAN;
        let mut x = vec![0.0; 30];
        let res = cg(&a, &b, &mut x, &IdentityPrecond, 1e-10, 0.0, 100);
        assert!(res.diverged, "{res:?}");
        assert_eq!(res.iterations, 0);
        assert_eq!(res.last_finite_residual, None);
        // Healthy non-convergence carries its own (finite) residual.
        let b = vec![1.0; 30];
        let mut x = vec![0.0; 30];
        let res = cg(&a, &b, &mut x, &IdentityPrecond, 1e-14, 0.0, 2);
        assert!(!res.converged && !res.diverged);
        assert_eq!(res.last_finite_residual, Some(res.residual));
    }

    #[test]
    fn checkpointed_cg_is_bitwise_identical_and_snapshots() {
        let a = laplace_1d(100);
        let b: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.1).sin()).collect();
        let mut x_plain = vec![0.0; 100];
        let res_plain = cg(&a, &b, &mut x_plain, &IdentityPrecond, 1e-10, 0.0, 1000);
        let rd = CountingReduce::new();
        let mut ck = Checkpointer::new(10);
        let mut x_ck = vec![0.0; 100];
        let res_ck = cg_checkpointed(
            &a,
            &b,
            &mut x_ck,
            &IdentityPrecond,
            1e-10,
            0.0,
            1000,
            &rd,
            &mut ck,
        );
        assert_eq!(res_plain.iterations, res_ck.iterations);
        assert_eq!(res_plain.residual.to_bits(), res_ck.residual.to_bits());
        for (p, f) in x_plain.iter().zip(&x_ck) {
            assert_eq!(p.to_bits(), f.to_bits());
        }
        // Checkpointing adds no reductions: exact fused-batch count as cg_with.
        assert_eq!(rd.batches.borrow().len(), 2 + 2 * res_ck.iterations);
        let ckpt = ck.latest().expect("solve ran past the cadence");
        assert_eq!(ckpt.method, "cg");
        assert!(ckpt.iteration >= 10 && ckpt.iteration <= res_ck.iterations);
        assert_eq!(ckpt.iteration % 10, 0);
        assert_eq!(ckpt.x.len(), 100);
        assert_eq!(ckpt.r.len(), 100);
        assert!(!ckpt.residual_tail.is_empty() && ckpt.residual_tail.len() <= 8);
        assert_eq!(*ckpt.residual_tail.last().unwrap(), ckpt.residual);
    }

    #[test]
    fn cg_restarted_from_checkpoint_matches_uninterrupted_answer() {
        // "Kill" a solve mid-flight, restart from its last checkpoint, and
        // converge to the same answer as the uninterrupted run.
        let a = laplace_1d(120);
        let b: Vec<f64> = (0..120).map(|i| 1.0 + ((i as f64) * 0.3).cos()).collect();
        let mut x_full = vec![0.0; 120];
        let res_full = cg(&a, &b, &mut x_full, &IdentityPrecond, 1e-11, 0.0, 2000);
        assert!(res_full.converged);

        // First attempt dies after a bounded number of iterations (cap as a
        // stand-in for a rank kill); its checkpoints survive.
        let mut ck = Checkpointer::new(5);
        let mut x1 = vec![0.0; 120];
        let res1 = cg_checkpointed(
            &a,
            &b,
            &mut x1,
            &IdentityPrecond,
            1e-11,
            0.0,
            23,
            &LocalReduce,
            &mut ck,
        );
        assert!(!res1.converged);
        let ckpt = ck.into_latest().expect("first attempt checkpointed");

        // Restart from the snapshot: seed x and the iteration offset.
        let mut ck2 = Checkpointer::new(5).resume_from(&ckpt);
        assert_eq!(ck2.offset(), ckpt.iteration);
        let mut x2 = ckpt.x.clone();
        let res2 = cg_checkpointed(
            &a,
            &b,
            &mut x2,
            &IdentityPrecond,
            1e-11,
            0.0,
            2000,
            &LocalReduce,
            &mut ck2,
        );
        assert!(res2.converged, "{res2:?}");
        // Same answer as the uninterrupted solve, to solver tolerance.
        let scale = x_full.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for (u, v) in x_full.iter().zip(&x2) {
            assert!((u - v).abs() <= 1e-8 * scale.max(1.0), "{u} vs {v}");
        }
        // Restart checkpoints carry the global iteration count forward.
        if let Some(c2) = ck2.latest() {
            assert!(c2.iteration >= ckpt.iteration);
        }
    }

    #[test]
    fn checkpointer_streams_snapshots_into_sink() {
        let a = laplace_1d(60);
        let b = vec![1.0; 60];
        let seen = std::cell::RefCell::new(Vec::new());
        let mut ck = Checkpointer::new(4).with_sink(|c: &SolveCheckpoint| {
            seen.borrow_mut().push(c.iteration);
        });
        let mut x = vec![0.0; 60];
        let res = cg_checkpointed(
            &a,
            &b,
            &mut x,
            &IdentityPrecond,
            1e-10,
            0.0,
            1000,
            &LocalReduce,
            &mut ck,
        );
        assert!(res.converged);
        let seen = seen.borrow();
        assert!(seen.len() >= 2, "snapshots: {seen:?}");
        assert!(seen.iter().all(|i| i % 4 == 0));
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "monotonic: {seen:?}");
    }

    #[test]
    fn checkpointed_bicgstab_is_bitwise_identical() {
        let a = advdiff_1d(120);
        let b: Vec<f64> = (0..120).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut x_plain = vec![0.0; 120];
        let res_plain = bicgstab(&a, &b, &mut x_plain, &IdentityPrecond, 1e-10, 0.0, 2000);
        let mut ck = Checkpointer::new(5);
        let mut x_ck = vec![0.0; 120];
        let res_ck = bicgstab_checkpointed(
            &a,
            &b,
            &mut x_ck,
            &IdentityPrecond,
            1e-10,
            0.0,
            2000,
            &LocalReduce,
            &mut ck,
        );
        assert_eq!(res_plain.iterations, res_ck.iterations);
        assert_eq!(res_plain.residual.to_bits(), res_ck.residual.to_bits());
        for (p, f) in x_plain.iter().zip(&x_ck) {
            assert_eq!(p.to_bits(), f.to_bits());
        }
        let ckpt = ck.latest().expect("bicgstab checkpointed");
        assert_eq!(ckpt.method, "bicgstab");
    }

    #[test]
    fn matrix_free_closure_operator() {
        // LinOp via (n, closure): y = 2x.
        let op = (4usize, |x: &[f64], y: &mut [f64]| {
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi = 2.0 * xi;
            }
        });
        let b = vec![2.0, 4.0, 6.0, 8.0];
        let mut x = vec![0.0; 4];
        let res = cg(&op, &b, &mut x, &IdentityPrecond, 1e-12, 0.0, 10);
        assert!(res.converged);
        for (xi, want) in x.iter().zip([1.0, 2.0, 3.0, 4.0]) {
            assert!((xi - want).abs() < 1e-10);
        }
    }
}
