//! Linear-algebra substrate: the role PETSc plays in the paper.
//!
//! The paper solves its systems with PETSc (`-ksp_type bcgs`,
//! `-pc_type asm`, `NEWTONLS`, and Matlab's `condest` for Table 1). This
//! crate provides the same capabilities natively:
//!
//! * [`DenseMatrix`] with partial-pivot LU — elemental matrices, ASM block
//!   solves, and exact small-system work (Table 1's 1089-DOF systems).
//! * [`CsrMatrix`] built from `(row, col, val)` triplets with duplicate
//!   *addition* — exactly the PETSc `ADD_VALUES` contract the traversal
//!   assembly of §3.6 relies on.
//! * Krylov solvers over an abstract [`LinOp`]: [`cg`] and [`bicgstab`]
//!   (the paper's `bcgs`), with Jacobi and overlapping Additive-Schwarz
//!   preconditioners.
//! * [`condest()`](condest::condest): the Hager–Higham 1-norm condition estimator (what Matlab's
//!   `condest` computes).
//! * [`newton()`](newton::newton): Newton with backtracking line search (PETSc `NEWTONLS`).

pub mod block;
pub mod condest;
pub mod csr;
pub mod dense;
pub mod gmres;
pub mod krylov;
pub mod newton;
pub mod vector;

pub use block::{block_cg_scratch, block_cg_with};
pub use condest::condest;
pub use csr::{CooBuilder, CsrMatrix};
pub use dense::{DenseMatrix, LuFactors};
pub use gmres::{chebyshev, gmres, lambda_max_estimate};
pub use krylov::{
    bicgstab, bicgstab_checkpointed, bicgstab_with, cg, cg_checkpointed, cg_with, cg_with_scratch,
    default_ckpt_every, AsmPrecond, Checkpointer, IdentityPrecond, JacobiPrecond, KrylovResult,
    KrylovScratch, LinOp, LocalReduce, Precond, Reduce, SolveCheckpoint, CKPT_EVERY_ENV,
};
pub use newton::{newton, NewtonOptions, NewtonResult};
