//! Newton's method with backtracking line search — the PETSc `NEWTONLS`
//! class the paper uses for the nonlinear Navier–Stokes solves.

use crate::csr::CsrMatrix;
use crate::krylov::{bicgstab, AsmPrecond, Precond};
use crate::vector::norm2;

/// Options controlling the nonlinear solve (defaults mirror the paper's
/// tolerances: rtol = atol = 1e-6).
#[derive(Clone, Copy, Debug)]
pub struct NewtonOptions {
    pub rtol: f64,
    pub atol: f64,
    pub max_iter: usize,
    /// Linear (inner) solve relative tolerance.
    pub lin_rtol: f64,
    pub lin_max_iter: usize,
    /// Number of ASM blocks for the inner preconditioner.
    pub asm_blocks: usize,
    pub asm_overlap: usize,
    /// Max halvings in the backtracking line search.
    pub max_backtracks: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            rtol: 1e-6,
            atol: 1e-6,
            max_iter: 25,
            lin_rtol: 1e-6,
            lin_max_iter: 2000,
            asm_blocks: 8,
            asm_overlap: 2,
            max_backtracks: 8,
        }
    }
}

/// Outcome of a Newton solve.
#[derive(Clone, Copy, Debug)]
pub struct NewtonResult {
    pub converged: bool,
    pub iterations: usize,
    pub residual: f64,
    /// Total inner Krylov iterations.
    pub linear_iterations: usize,
}

/// Solves `F(x) = 0` by Newton–Krylov with backtracking line search.
///
/// * `residual(x, out)` evaluates `F(x)`.
/// * `jacobian(x)` assembles the Jacobian at `x`.
pub fn newton<FR, FJ>(
    x: &mut [f64],
    mut residual: FR,
    mut jacobian: FJ,
    opts: &NewtonOptions,
) -> NewtonResult
where
    FR: FnMut(&[f64], &mut [f64]),
    FJ: FnMut(&[f64]) -> CsrMatrix,
{
    let n = x.len();
    let mut f = vec![0.0; n];
    residual(x, &mut f);
    let f0 = norm2(&f);
    let tol = opts.rtol * f0 + opts.atol;
    let mut fnorm = f0;
    let mut lin_total = 0usize;
    for it in 0..opts.max_iter {
        if fnorm <= tol {
            return NewtonResult {
                converged: true,
                iterations: it,
                residual: fnorm,
                linear_iterations: lin_total,
            };
        }
        let jac = jacobian(x);
        // Solve J dx = -F.
        let rhs: Vec<f64> = f.iter().map(|v| -v).collect();
        let mut dx = vec![0.0; n];
        let pre = AsmPrecond::new(&jac, opts.asm_blocks, opts.asm_overlap);
        let lin = bicgstab(
            &jac,
            &rhs,
            &mut dx,
            &pre,
            opts.lin_rtol,
            0.0,
            opts.lin_max_iter,
        );
        lin_total += lin.iterations;
        if !lin.converged && lin.residual > 0.1 * norm2(&rhs) {
            // Linear solve failed badly; try Jacobi as a fallback.
            dx.fill(0.0);
            let jac_pre = crate::krylov::JacobiPrecond::from_matrix(&jac);
            let lin2 = bicgstab(
                &jac,
                &rhs,
                &mut dx,
                &jac_pre,
                opts.lin_rtol,
                0.0,
                opts.lin_max_iter,
            );
            lin_total += lin2.iterations;
        }
        // Backtracking line search on ‖F‖.
        let mut lambda = 1.0;
        let mut accepted = false;
        let x_old = x.to_vec();
        for _ in 0..=opts.max_backtracks {
            for k in 0..n {
                x[k] = x_old[k] + lambda * dx[k];
            }
            residual(x, &mut f);
            let newnorm = norm2(&f);
            if newnorm < (1.0 - 1e-4 * lambda) * fnorm || newnorm <= tol {
                fnorm = newnorm;
                accepted = true;
                break;
            }
            lambda *= 0.5;
        }
        if !accepted {
            // Keep the last (smallest) step anyway; Newton may still creep.
            fnorm = norm2(&f);
        }
    }
    NewtonResult {
        converged: fnorm <= tol,
        iterations: opts.max_iter,
        residual: fnorm,
        linear_iterations: lin_total,
    }
}

/// Apply a preconditioner (convenience re-export for callers needing direct
/// access in tests).
pub fn apply_precond<M: Precond>(m: &M, r: &[f64], z: &mut [f64]) {
    m.apply(r, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;

    #[test]
    fn solves_scalar_quadratic_system() {
        // F(x) = x.^2 - c, componentwise; root sqrt(c).
        let c = [4.0, 9.0, 16.0];
        let mut x = vec![1.0, 1.0, 1.0];
        let res = newton(
            &mut x,
            |x, out| {
                for (o, (&xi, &ci)) in out.iter_mut().zip(x.iter().zip(&c)) {
                    *o = xi * xi - ci;
                }
            },
            |x| {
                let mut b = CooBuilder::new(3);
                for (i, &xi) in x.iter().enumerate() {
                    b.add(i, i, 2.0 * xi);
                }
                b.build()
            },
            &NewtonOptions::default(),
        );
        assert!(res.converged, "{res:?}");
        for (xi, ci) in x.iter().zip(&c) {
            assert!((xi - ci.sqrt()).abs() < 1e-6);
        }
    }

    #[test]
    fn solves_coupled_nonlinear_system() {
        // F1 = x0 + x1 - 3; F2 = x0^2 + x1^2 - 9 ; root (0,3) or (3,0).
        let mut x = vec![1.0, 5.0];
        let res = newton(
            &mut x,
            |x, out| {
                out[0] = x[0] + x[1] - 3.0;
                out[1] = x[0] * x[0] + x[1] * x[1] - 9.0;
            },
            |x| {
                let mut b = CooBuilder::new(2);
                b.add(0, 0, 1.0);
                b.add(0, 1, 1.0);
                b.add(1, 0, 2.0 * x[0]);
                b.add(1, 1, 2.0 * x[1]);
                b.build()
            },
            &NewtonOptions {
                rtol: 1e-12,
                atol: 1e-10,
                lin_rtol: 1e-10,
                ..Default::default()
            },
        );
        assert!(res.converged);
        let f1: f64 = x[0] + x[1] - 3.0;
        let f2: f64 = x[0] * x[0] + x[1] * x[1] - 9.0;
        assert!(f1.abs() < 1e-6 && f2.abs() < 1e-6);
    }

    #[test]
    fn line_search_handles_bad_initial_guess() {
        // f(x) = atan(x): full Newton overshoots for |x0| > ~1.39; the line
        // search must save it.
        let mut x = vec![3.0];
        let res = newton(
            &mut x,
            |x, out| out[0] = x[0].atan(),
            |x| {
                let mut b = CooBuilder::new(1);
                b.add(0, 0, 1.0 / (1.0 + x[0] * x[0]));
                b.build()
            },
            &NewtonOptions {
                atol: 1e-10,
                rtol: 1e-10,
                max_iter: 50,
                ..Default::default()
            },
        );
        assert!(res.converged, "{res:?}");
        assert!(x[0].abs() < 1e-8);
    }
}
