//! Dense vector helpers used throughout the solvers.

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y` (classic `xpby` used by CG updates).
#[inline]
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Max (infinity) norm.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// 1-norm.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let a = [1.0, -2.0, 3.0];
        let mut b = vec![1.0, 1.0, 1.0];
        assert_eq!(dot(&a, &b), 2.0);
        axpy(2.0, &a, &mut b);
        assert_eq!(b, vec![3.0, -3.0, 7.0]);
        assert_eq!(norm_inf(&a), 3.0);
        assert_eq!(norm1(&a), 6.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let mut y = vec![1.0, 2.0];
        xpby(&[10.0, 20.0], 0.5, &mut y);
        assert_eq!(y, vec![10.5, 21.0]);
    }
}
