//! Drag/lift extraction: traction integration over the voxelated object
//! surface (the surrogate faces of §4.3), used for the drag-crisis
//! validation (Fig. 13).

use crate::flow::FlowSolver;
use carve_fem::basis::{gauss_rule, lagrange_deriv_unit, lagrange_eval_unit};
use carve_fem::sbm::{surrogate_faces, SurrogateFace};

/// Integrates the fluid traction `t = −p ñ + ν (∇u + ∇uᵀ) ñ` over the
/// surrogate faces selected by `on_object` (probed just outside each face,
/// in unit-cube coordinates) — so channel walls and object surfaces can be
/// separated. Returns the force vector (ρ = 1 units).
pub fn drag_on_surrogate<const DIM: usize>(
    solver: &FlowSolver<DIM>,
    on_object: &dyn Fn(&[f64; DIM]) -> bool,
) -> [f64; DIM] {
    let mesh = solver.mesh;
    let faces: Vec<SurrogateFace> = surrogate_faces(mesh, true)
        .into_iter()
        .filter(|f| {
            let e = &mesh.elems[f.elem];
            let (emin, h) = e.bounds_unit();
            let mut probe = [0.0; DIM];
            for k in 0..DIM {
                probe[k] = emin[k] + 0.5 * h;
            }
            probe[f.axis] = if f.positive {
                emin[f.axis] + h * (1.0 + 1e-6)
            } else {
                emin[f.axis] - h * 1e-6
            };
            on_object(&probe)
        })
        .collect();
    let nu = solver.params.nu;
    let quad = gauss_rule(2);
    let nq1 = quad.points.len();
    let mut force = [0.0; DIM];
    let nb = 2usize;
    let npe = nb.pow(DIM as u32);
    for f in &faces {
        let e = &mesh.elems[f.elem];
        let (_emin_u, h_u) = e.bounds_unit();
        let h = h_u * solver.scale;
        // Element nodal state (velocity + pressure).
        let state = &solver.state;
        let mut u_e = vec![0.0; npe * DIM];
        let mut p_e = vec![0.0; npe];
        for lin in 0..npe {
            let idx = carve_core::nodes::lattice_index::<DIM>(lin, 1);
            let c = carve_core::nodes::elem_node_coord(e, 1, &idx);
            match carve_core::resolve_slot(&mesh.nodes, e, &c) {
                carve_core::SlotRef::Direct(i) => {
                    for k in 0..DIM {
                        u_e[lin * DIM + k] = state[i * (DIM + 1) + k];
                    }
                    p_e[lin] = state[i * (DIM + 1) + DIM];
                }
                carve_core::SlotRef::Hanging(st) => {
                    for (i, w) in st {
                        for k in 0..DIM {
                            u_e[lin * DIM + k] += w * state[i * (DIM + 1) + k];
                        }
                        p_e[lin] += w * state[i * (DIM + 1) + DIM];
                    }
                }
            }
        }
        // ñ: outward normal of the fluid voxel domain (into the object).
        let mut normal = [0.0; DIM];
        normal[f.axis] = if f.positive { 1.0 } else { -1.0 };
        let area = h.powi(DIM as i32 - 1);
        let free: Vec<usize> = (0..DIM).filter(|&k| k != f.axis).collect();
        let nqs = nq1.pow(free.len() as u32);
        let t_axis = if f.positive { 1.0 } else { 0.0 };
        for qlin in 0..nqs {
            let mut rem = qlin;
            let mut tref = [0.0; DIM];
            tref[f.axis] = t_axis;
            let mut w = 1.0;
            for &k in &free {
                let qi = rem % nq1;
                rem /= nq1;
                tref[k] = quad.points[qi];
                w *= quad.weights[qi];
            }
            let ds = w * area;
            // Pressure and velocity gradient at the face point.
            let mut press = 0.0;
            let mut grad_u = [[0.0; DIM]; DIM]; // grad_u[comp][deriv]
            for lin in 0..npe {
                let mut r = lin;
                let mut li = [0usize; DIM];
                for slot in li.iter_mut() {
                    *slot = r % nb;
                    r /= nb;
                }
                let mut phi = 1.0;
                for k in 0..DIM {
                    phi *= lagrange_eval_unit(1, li[k], tref[k]);
                }
                press += phi * p_e[lin];
                let mut gvec = [0.0; DIM];
                for (kd, gk) in gvec.iter_mut().enumerate() {
                    let mut g = 1.0;
                    for m in 0..DIM {
                        if m == kd {
                            g *= lagrange_deriv_unit(1, li[m], tref[m]);
                        } else {
                            g *= lagrange_eval_unit(1, li[m], tref[m]);
                        }
                    }
                    *gk = g / h;
                }
                for (comp, gu_row) in grad_u.iter_mut().enumerate() {
                    let u_c = u_e[lin * DIM + comp];
                    for (gur, &g) in gu_row.iter_mut().zip(&gvec) {
                        *gur += g * u_c;
                    }
                }
            }
            // Traction on the *object* = −(fluid traction on Γ̃ with the
            // fluid-outward normal): force the fluid exerts on the body.
            for comp in 0..DIM {
                let mut visc = 0.0;
                for k in 0..DIM {
                    visc += nu * (grad_u[comp][k] + grad_u[k][comp]) * normal[k];
                }
                force[comp] += ds * (-press * normal[comp] + visc);
            }
        }
    }
    // The integral above is the traction the boundary exerts on the fluid;
    // the drag on the body is its reaction.
    let _ = &faces;
    let mut body_force = [0.0; DIM];
    for k in 0..DIM {
        body_force[k] = -force[k];
    }
    body_force
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowSolver, NodeBc};
    use crate::vms::VmsParams;
    use carve_core::Mesh;
    use carve_geom::{CarvedSolids, CompositeDomain, RetainBox, Sphere};
    use carve_sfc::Curve;

    /// Flow past a disk in a 2D channel at low Re: the drag must point
    /// downstream (+x), lift ≈ 0 by symmetry.
    #[test]
    fn disk_drag_points_downstream() {
        let r = 0.06;
        let center = [0.35, 0.25];
        let disk = Sphere::<2>::new(center, r);
        let domain = CompositeDomain {
            retain: RetainBox::new([0.0, 0.0], [1.0, 0.5]),
            carved: CarvedSolids::new(vec![Box::new(disk)]),
        };
        let mesh = Mesh::build(&domain, Curve::Hilbert, 4, 6, 1);
        let u_in = 1.0;
        let bc = move |x: &[f64; 2], fl: carve_core::NodeFlags| -> NodeBc<2> {
            let eps = 1e-9;
            if x[0] <= eps {
                return NodeBc::Velocity([u_in, 0.0]);
            }
            if x[0] >= 1.0 - eps {
                return NodeBc::Pressure(0.0);
            }
            if x[1] <= eps || x[1] >= 0.5 - eps {
                // slip walls: keep the channel simple
                return NodeBc::Velocity([u_in, 0.0]);
            }
            if fl.is_carved_boundary() {
                return NodeBc::Velocity([0.0, 0.0]); // no-slip on the disk
            }
            NodeBc::Free
        };
        // Re = u d / nu = 1*0.12/0.012 = 10.
        let params = VmsParams::new(0.012, 0.1);
        let mut solver = FlowSolver::new(&mesh, params, 1.0, &bc);
        let zero = |_: &[f64; 2]| [0.0, 0.0];
        let rep = solver.run_to_steady(&zero, 25, 1e-4);
        assert!(rep.linear.converged);
        let on_disk = move |x: &[f64; 2]| {
            let d = ((x[0] - center[0]).powi(2) + (x[1] - center[1]).powi(2)).sqrt();
            d < r + 0.05
        };
        let f = drag_on_surrogate(&solver, &on_disk);
        assert!(f[0] > 0.0, "drag must be downstream: {f:?}");
        // Cd = 2 Fx / (U^2 * d): cylinder at Re=10 has Cd ≈ 2.8–3.5;
        // voxelated at this resolution: accept a broad band.
        let cd = 2.0 * f[0] / (u_in * u_in * 2.0 * r);
        assert!(cd > 1.0 && cd < 8.0, "Cd = {cd}");
        assert!(
            f[1].abs() < 0.4 * f[0],
            "lift should be small by symmetry: {f:?}"
        );
    }
}
