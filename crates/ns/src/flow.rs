//! The incompressible-flow driver: BDF1 + Picard over the VMS elemental
//! operators, assembled with hanging-node stencils and solved with
//! BiCGStab + additive Schwarz.

use crate::vms::{element_ns_system, VmsParams};
use carve_core::nodes::NodeFlags;
use carve_core::{resolve_slot, Mesh, SlotRef};
use carve_la::{bicgstab, AsmPrecond, CooBuilder, KrylovResult};

/// Strong boundary condition at one node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NodeBc<const DIM: usize> {
    /// Prescribed velocity, free pressure (walls, inlets, object no-slip).
    Velocity([f64; DIM]),
    /// Prescribed pressure, free velocity (outlets).
    Pressure(f64),
    /// Prescribed velocity and pressure.
    VelocityAndPressure([f64; DIM], f64),
    /// Interior node.
    Free,
}

/// Node-wise boundary-condition oracle: unit-cube position × node flags →
/// condition. This is where applications encode inlets/outlets/no-slip.
pub type FlowBc<const DIM: usize> = dyn Fn(&[f64; DIM], NodeFlags) -> NodeBc<DIM>;

/// One time step's report.
#[derive(Clone, Copy, Debug)]
pub struct StepReport {
    pub picard_iters: usize,
    pub linear: KrylovResult,
    /// Velocity change ‖u^{n+1} − u^n‖∞ over the step.
    pub delta_u: f64,
}

/// Incompressible VMS Navier–Stokes solver on a carved mesh.
pub struct FlowSolver<'a, const DIM: usize> {
    pub mesh: &'a Mesh<DIM>,
    pub params: VmsParams,
    /// Physical size of the root cube.
    pub scale: f64,
    /// State: `(DIM+1)` unknowns per node, node-major (u₀…u_{d−1}, p).
    pub state: Vec<f64>,
    bc: Vec<NodeBc<DIM>>,
    /// Element-to-slot map (resolved once; hanging stencils included).
    slots: Vec<Vec<SlotRef>>,
    /// Picard tolerance on ‖Δu‖∞.
    pub picard_tol: f64,
    pub max_picard: usize,
    /// Cap on inner BiCGStab iterations per Picard solve.
    pub lin_max_iter: usize,
}

impl<'a, const DIM: usize> FlowSolver<'a, DIM> {
    pub fn new(
        mesh: &'a Mesh<DIM>,
        params: VmsParams,
        scale: f64,
        bc: &(dyn Fn(&[f64; DIM], NodeFlags) -> NodeBc<DIM> + '_),
    ) -> Self {
        let n = mesh.num_dofs();
        let p = mesh.order;
        assert_eq!(p, 1, "NS solver uses equal-order linear elements");
        let npe = carve_core::nodes::nodes_per_elem::<DIM>(p);
        let slots = mesh
            .elems
            .iter()
            .map(|e| {
                (0..npe)
                    .map(|lin| {
                        let idx = carve_core::nodes::lattice_index::<DIM>(lin, p);
                        let c = carve_core::nodes::elem_node_coord(e, p, &idx);
                        resolve_slot(&mesh.nodes, e, &c)
                    })
                    .collect()
            })
            .collect();
        let bcs: Vec<NodeBc<DIM>> = (0..n)
            .map(|i| bc(&mesh.nodes.unit_coords(i), mesh.nodes.flags[i]))
            .collect();
        let mut state = vec![0.0; n * (DIM + 1)];
        // Start from the boundary data for a reasonable initial advection
        // field.
        for (i, b) in bcs.iter().enumerate() {
            if let NodeBc::Velocity(v) | NodeBc::VelocityAndPressure(v, _) = b {
                for k in 0..DIM {
                    state[i * (DIM + 1) + k] = v[k];
                }
            }
        }
        FlowSolver {
            mesh,
            params,
            scale,
            state,
            bc: bcs,
            slots,
            picard_tol: 1e-6,
            max_picard: 12,
            lin_max_iter: 20_000,
        }
    }

    /// Velocity of node `i`.
    pub fn velocity(&self, i: usize) -> [f64; DIM] {
        let mut v = [0.0; DIM];
        for (k, vk) in v.iter_mut().enumerate() {
            *vk = self.state[i * (DIM + 1) + k];
        }
        v
    }

    /// Pressure of node `i`.
    pub fn pressure(&self, i: usize) -> f64 {
        self.state[i * (DIM + 1) + DIM]
    }

    /// Node-major velocity-only view (used by transport and drag).
    pub fn velocity_field(&self) -> Vec<f64> {
        let n = self.mesh.num_dofs();
        let mut out = vec![0.0; n * DIM];
        for i in 0..n {
            for k in 0..DIM {
                out[i * DIM + k] = self.state[i * (DIM + 1) + k];
            }
        }
        out
    }

    /// Gathers element-local velocities (node-major, `npe × DIM`) from a
    /// state vector.
    fn gather_elem_velocity(&self, ei: usize, state: &[f64]) -> Vec<f64> {
        let npe = self.slots[ei].len();
        let mut out = vec![0.0; npe * DIM];
        for (lin, slot) in self.slots[ei].iter().enumerate() {
            for k in 0..DIM {
                out[lin * DIM + k] = match slot {
                    SlotRef::Direct(i) => state[i * (DIM + 1) + k],
                    SlotRef::Hanging(st) => {
                        st.iter().map(|(i, w)| state[i * (DIM + 1) + k] * w).sum()
                    }
                };
            }
        }
        out
    }

    /// Performs one BDF1 step (dt from `params`; ∞ = steady iteration).
    pub fn step(&mut self, f: &dyn Fn(&[f64; DIM]) -> [f64; DIM]) -> StepReport {
        let n = self.mesh.num_dofs();
        let ndof = n * (DIM + 1);
        let u_old_state = self.state.clone();
        let mut linear = KrylovResult::stalled(0, 0.0);
        let mut picard_iters = 0;
        let npe_full = carve_core::nodes::nodes_per_elem::<DIM>(self.mesh.order);
        let blk_dofs = npe_full * (DIM + 1);
        // Each element emits at most (npe·(DIM+1))² block entries; sizing the
        // triplet buffer once outside the Picard loop and rebuilding with
        // `build_and_clear` means every nonlinear iteration reuses the same
        // triplet and rhs allocations instead of regrowing them.
        let mut coo = CooBuilder::with_capacity(ndof, self.mesh.elems.len() * blk_dofs * blk_dofs);
        let mut rhs = vec![0.0; ndof];
        for _picard in 0..self.max_picard {
            picard_iters += 1;
            rhs.fill(0.0);
            for (ei, e) in self.mesh.elems.iter().enumerate() {
                let (emin_u, h_u) = e.bounds_unit();
                let mut emin = [0.0; DIM];
                for k in 0..DIM {
                    emin[k] = emin_u[k] * self.scale;
                }
                let h = h_u * self.scale;
                let a_nodes = self.gather_elem_velocity(ei, &self.state);
                let uo_nodes = self.gather_elem_velocity(ei, &u_old_state);
                let (ke, re) =
                    element_ns_system::<DIM>(&self.params, &emin, h, &a_nodes, &uo_nodes, f);
                // Scatter W^T K W over block dofs.
                let npe = self.slots[ei].len();
                let blk = DIM + 1;
                // Expand slot stencils per node once.
                let stencils: Vec<Vec<(usize, f64)>> = self.slots[ei]
                    .iter()
                    .map(|s| match s {
                        SlotRef::Direct(i) => vec![(*i, 1.0)],
                        SlotRef::Hanging(st) => st.clone(),
                    })
                    .collect();
                for li in 0..npe {
                    for ci in 0..blk {
                        let row_local = li * blk + ci;
                        for (gi, wi) in &stencils[li] {
                            let grow = gi * blk + ci;
                            rhs[grow] += wi * re[row_local];
                            for lj in 0..npe {
                                for cj in 0..blk {
                                    let v = ke[(row_local, lj * blk + cj)];
                                    if v == 0.0 {
                                        continue;
                                    }
                                    for (gj, wj) in &stencils[lj] {
                                        coo.add(grow, gj * blk + cj, wi * wj * v);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            let mut a = coo.build_and_clear();
            // Strong boundary conditions.
            for i in 0..n {
                let constrain =
                    |a: &mut carve_la::CsrMatrix, rhs: &mut [f64], dof: usize, val: f64| {
                        for k in a.row_ptr[dof]..a.row_ptr[dof + 1] {
                            a.vals[k] = if a.cols[k] as usize == dof { 1.0 } else { 0.0 };
                        }
                        rhs[dof] = val;
                    };
                match self.bc[i] {
                    NodeBc::Velocity(v) => {
                        for (k, &vk) in v.iter().enumerate() {
                            constrain(&mut a, &mut rhs, i * (DIM + 1) + k, vk);
                        }
                    }
                    NodeBc::Pressure(p) => {
                        constrain(&mut a, &mut rhs, i * (DIM + 1) + DIM, p);
                    }
                    NodeBc::VelocityAndPressure(v, p) => {
                        for (k, &vk) in v.iter().enumerate() {
                            constrain(&mut a, &mut rhs, i * (DIM + 1) + k, vk);
                        }
                        constrain(&mut a, &mut rhs, i * (DIM + 1) + DIM, p);
                    }
                    NodeBc::Free => {}
                }
            }
            // Bound the *block size* (dense LU is cubic in it), not the count.
            let nblocks = (ndof / 500).max(1);
            let pre = AsmPrecond::new(&a, nblocks, 2 * (DIM + 1));
            let mut x = self.state.clone();
            linear = bicgstab(&a, &rhs, &mut x, &pre, 1e-8, 1e-12, self.lin_max_iter);
            let delta: f64 = x
                .iter()
                .zip(&self.state)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            self.state = x;
            if delta < self.picard_tol {
                break;
            }
        }
        let delta_u: f64 = self
            .state
            .iter()
            .zip(&u_old_state)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        StepReport {
            picard_iters,
            linear,
            delta_u,
        }
    }

    /// Marches to a statistically steady state: steps until ‖Δu‖∞ < `tol`
    /// or `max_steps`. Returns the last report.
    pub fn run_to_steady(
        &mut self,
        f: &dyn Fn(&[f64; DIM]) -> [f64; DIM],
        max_steps: usize,
        tol: f64,
    ) -> StepReport {
        let mut last = self.step(f);
        for _ in 1..max_steps {
            if last.delta_u < tol {
                break;
            }
            last = self.step(f);
        }
        last
    }

    /// L2 norm of the velocity divergence (mesh-quality/solution check).
    pub fn divergence_l2(&self) -> f64 {
        let quad = carve_fem::gauss_rule(2);
        let nq1 = quad.points.len();
        let nqs = nq1.pow(DIM as u32);
        let mut total = 0.0;
        for (ei, e) in self.mesh.elems.iter().enumerate() {
            let (_, h_u) = e.bounds_unit();
            let h = h_u * self.scale;
            let vel = self.gather_elem_velocity(ei, &self.state);
            let npe = self.slots[ei].len();
            for qlin in 0..nqs {
                let mut rem = qlin;
                let mut tref = [0.0; DIM];
                let mut w = 1.0;
                for tk in tref.iter_mut().take(DIM) {
                    let qi = rem % nq1;
                    rem /= nq1;
                    *tk = quad.points[qi];
                    w *= quad.weights[qi];
                }
                let mut div = 0.0;
                for i in 0..npe {
                    let mut r = i;
                    let mut li = [0usize; DIM];
                    for slot in li.iter_mut() {
                        *slot = r % 2;
                        r /= 2;
                    }
                    for k in 0..DIM {
                        let mut g = 1.0;
                        for m in 0..DIM {
                            if m == k {
                                g *= carve_fem::lagrange_deriv_unit(1, li[m], tref[m]);
                            } else {
                                g *= carve_fem::lagrange_eval_unit(1, li[m], tref[m]);
                            }
                        }
                        div += vel[i * DIM + k] * g / h;
                    }
                }
                total += w * h.powi(DIM as i32) * div * div;
            }
        }
        total.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_geom::RetainBox;
    use carve_sfc::Curve;

    /// Poiseuille flow in a 2D channel \[0,1\]×[0,H]: prescribed parabolic
    /// inlet, no-slip walls, pressure outlet. Steady solution is the same
    /// parabola everywhere.
    #[test]
    fn poiseuille_profile_recovered() {
        const H: f64 = 0.25;
        let umax = 1.0;
        let domain = RetainBox::<2>::channel([1.0, H]);
        let mesh = Mesh::build(&domain, Curve::Morton, 4, 4, 1);
        let profile = move |y: f64| 4.0 * umax * y * (H - y) / (H * H);
        let bc = move |x: &[f64; 2], _fl: NodeFlags| -> NodeBc<2> {
            let eps = 1e-9;
            if x[1] <= eps || x[1] >= H - eps {
                NodeBc::Velocity([0.0, 0.0]) // walls
            } else if x[0] <= eps {
                NodeBc::Velocity([profile(x[1]), 0.0]) // inlet
            } else if x[0] >= 1.0 - eps {
                NodeBc::Pressure(0.0) // outlet
            } else {
                NodeBc::Free
            }
        };
        let params = VmsParams::new(0.05, 0.5);
        let mut solver = FlowSolver::new(&mesh, params, 1.0, &bc);
        let zero = |_: &[f64; 2]| [0.0, 0.0];
        let rep = solver.run_to_steady(&zero, 40, 1e-5);
        assert!(rep.linear.converged, "{rep:?}");
        // Check the profile at an interior column x = 0.5.
        let mut checked = 0;
        for i in 0..mesh.num_dofs() {
            let x = mesh.nodes.unit_coords(i);
            if (x[0] - 0.5).abs() < 1e-9 && x[1] > 1e-9 && x[1] < H - 1e-9 {
                let v = solver.velocity(i);
                let want = profile(x[1]);
                assert!(
                    (v[0] - want).abs() < 0.05 * umax,
                    "u({:?}) = {} want {}",
                    x,
                    v[0],
                    want
                );
                assert!(v[1].abs() < 0.02 * umax);
                checked += 1;
            }
        }
        assert!(checked >= 3);
        // Divergence must be small relative to the velocity scale.
        assert!(
            solver.divergence_l2() < 0.05,
            "div {}",
            solver.divergence_l2()
        );
    }

    #[test]
    fn lid_driven_cavity_recirculates() {
        let domain = RetainBox::<2>::new([0.0, 0.0], [0.5, 0.5]);
        let mesh = Mesh::build(&domain, Curve::Morton, 4, 4, 1);
        let bc = |x: &[f64; 2], _fl: NodeFlags| -> NodeBc<2> {
            let eps = 1e-9;
            if x[1] >= 0.5 - eps && x[0] > eps && x[0] < 0.5 - eps {
                NodeBc::Velocity([1.0, 0.0]) // moving lid
            } else if x[0] <= eps || x[0] >= 0.5 - eps || x[1] <= eps {
                if (x[0] - 0.25).abs() < 1e-9 && x[1] <= eps {
                    // pin pressure at one bottom node
                    return NodeBc::VelocityAndPressure([0.0, 0.0], 0.0);
                }
                NodeBc::Velocity([0.0, 0.0])
            } else if x[1] >= 0.5 - eps {
                NodeBc::Velocity([0.0, 0.0]) // lid corners
            } else {
                NodeBc::Free
            }
        };
        let params = VmsParams::new(0.01, 0.25);
        let mut solver = FlowSolver::new(&mesh, params, 1.0, &bc);
        let zero = |_: &[f64; 2]| [0.0, 0.0];
        let rep = solver.run_to_steady(&zero, 30, 1e-4);
        assert!(rep.linear.converged);
        // Recirculation: u must be negative somewhere in the lower half
        // (return flow), positive near the lid.
        let mut min_u = f64::INFINITY;
        for i in 0..mesh.num_dofs() {
            let x = mesh.nodes.unit_coords(i);
            if x[1] < 0.3 && x[0] > 0.1 && x[0] < 0.4 {
                min_u = min_u.min(solver.velocity(i)[0]);
            }
        }
        assert!(min_u < -0.01, "no return flow: min_u = {min_u}");
    }
}
