//! Incompressible Navier–Stokes on carved octree meshes with residual-based
//! VMS/SUPG/PSPG stabilization (Bazilevs et al. \[12\], the formulation the
//! paper couples to its meshes in §5), plus drag extraction on the
//! voxelated object surface (Fig. 13) and SUPG scalar transport for the
//! viral-load application (Fig. 16).
//!
//! Equal-order linear (p=1) velocity/pressure on axis-aligned cube
//! elements; BDF1 time stepping; Picard linearization per step; assembled
//! systems solved with BiCGStab + additive Schwarz (the paper's PETSc
//! `bcgs`/`asm` configuration).

pub mod drag;
pub mod flow;
pub mod transport;
pub mod vms;

pub use drag::drag_on_surrogate;
pub use flow::{FlowBc, FlowSolver, NodeBc, StepReport};
pub use transport::TransportSolver;
pub use vms::{element_ns_system, taus, VmsParams};
