//! SUPG-stabilized scalar advection–diffusion transport: the viral-load
//! model of §5 (a scalar advected by a statistically steady flow field with
//! a localized source at the infected individual).

use carve_core::{resolve_slot, Mesh, NodeFlags, SlotRef};
use carve_fem::basis::{gauss_rule, lagrange_deriv_unit, lagrange_eval_unit};
use carve_la::{bicgstab, AsmPrecond, CooBuilder, KrylovResult};

/// Scalar transport solver (BDF1 + SUPG) over a frozen velocity field.
pub struct TransportSolver<'a, const DIM: usize> {
    pub mesh: &'a Mesh<DIM>,
    /// Diffusivity κ.
    pub kappa: f64,
    pub dt: f64,
    pub scale: f64,
    /// Frozen velocity, node-major `DIM` components per node.
    velocity: &'a [f64],
    /// Scalar concentration per node.
    pub c: Vec<f64>,
    /// Dirichlet mask: `Some(value)` per constrained node.
    dirichlet: Vec<Option<f64>>,
    slots: Vec<Vec<SlotRef>>,
}

impl<'a, const DIM: usize> TransportSolver<'a, DIM> {
    /// `bc` returns `Some(value)` at nodes with prescribed concentration
    /// (e.g. 0 at fresh-air inlets).
    pub fn new(
        mesh: &'a Mesh<DIM>,
        velocity: &'a [f64],
        kappa: f64,
        dt: f64,
        scale: f64,
        bc: &dyn Fn(&[f64; DIM], NodeFlags) -> Option<f64>,
    ) -> Self {
        let n = mesh.num_dofs();
        assert_eq!(velocity.len(), n * DIM);
        assert_eq!(mesh.order, 1, "transport uses linear elements");
        let npe = carve_core::nodes::nodes_per_elem::<DIM>(1);
        let slots = mesh
            .elems
            .iter()
            .map(|e| {
                (0..npe)
                    .map(|lin| {
                        let idx = carve_core::nodes::lattice_index::<DIM>(lin, 1);
                        let coord = carve_core::nodes::elem_node_coord(e, 1, &idx);
                        resolve_slot(&mesh.nodes, e, &coord)
                    })
                    .collect()
            })
            .collect();
        let dirichlet = (0..n)
            .map(|i| bc(&mesh.nodes.unit_coords(i), mesh.nodes.flags[i]))
            .collect();
        TransportSolver {
            mesh,
            kappa,
            dt,
            scale,
            velocity,
            c: vec![0.0; n],
            dirichlet,
            slots,
        }
    }

    fn gather<const COMP: usize>(&self, ei: usize, data: &[f64]) -> Vec<f64> {
        let npe = self.slots[ei].len();
        let mut out = vec![0.0; npe * COMP];
        for (lin, slot) in self.slots[ei].iter().enumerate() {
            for k in 0..COMP {
                out[lin * COMP + k] = match slot {
                    SlotRef::Direct(i) => data[i * COMP + k],
                    SlotRef::Hanging(st) => st.iter().map(|(i, w)| data[i * COMP + k] * w).sum(),
                };
            }
        }
        out
    }

    /// Advances one BDF1 step with source `s(x)` (physical coordinates).
    pub fn step(&mut self, source: &dyn Fn(&[f64; DIM]) -> f64) -> KrylovResult {
        let n = self.mesh.num_dofs();
        let mut coo = CooBuilder::new(n);
        let mut rhs = vec![0.0; n];
        let quad = gauss_rule(2);
        let nq1 = quad.points.len();
        let nqs = nq1.pow(DIM as u32);
        let nb = 2usize;
        let npe = nb.pow(DIM as u32);
        let inv_dt = 1.0 / self.dt;
        for (ei, e) in self.mesh.elems.iter().enumerate() {
            let (emin_u, h_u) = e.bounds_unit();
            let h = h_u * self.scale;
            let vol = h.powi(DIM as i32);
            let a_nodes = self.gather::<DIM>(ei, self.velocity);
            let c_old = self.gather::<1>(ei, &self.c);
            let mut ke = vec![0.0; npe * npe];
            let mut re = vec![0.0; npe];
            for qlin in 0..nqs {
                let mut rem = qlin;
                let mut tref = [0.0; DIM];
                let mut w = 1.0;
                for tk in tref.iter_mut().take(DIM) {
                    let qi = rem % nq1;
                    rem /= nq1;
                    *tk = quad.points[qi];
                    w *= quad.weights[qi];
                }
                let jw = w * vol;
                let mut phi = [0.0; 8];
                let mut grad = [[0.0; DIM]; 8];
                for i in 0..npe {
                    let mut r = i;
                    let mut li = [0usize; DIM];
                    for slot in li.iter_mut() {
                        *slot = r % nb;
                        r /= nb;
                    }
                    let mut v = 1.0;
                    for k in 0..DIM {
                        v *= lagrange_eval_unit(1, li[k], tref[k]);
                    }
                    phi[i] = v;
                    for (k, gk) in grad[i].iter_mut().enumerate() {
                        let mut g = 1.0;
                        for m in 0..DIM {
                            if m == k {
                                g *= lagrange_deriv_unit(1, li[m], tref[m]);
                            } else {
                                g *= lagrange_eval_unit(1, li[m], tref[m]);
                            }
                        }
                        *gk = g / h;
                    }
                }
                let mut a = [0.0; DIM];
                let mut co = 0.0;
                for i in 0..npe {
                    co += phi[i] * c_old[i];
                    for k in 0..DIM {
                        a[k] += phi[i] * a_nodes[i * DIM + k];
                    }
                }
                let a_norm = a.iter().map(|x| x * x).sum::<f64>().sqrt();
                // SUPG τ for transient advection–diffusion.
                let tau = 1.0
                    / ((2.0 * inv_dt).powi(2)
                        + (2.0 * a_norm / h).powi(2)
                        + (12.0 * self.kappa / (h * h)).powi(2))
                    .sqrt();
                let mut x = [0.0; DIM];
                for k in 0..DIM {
                    x[k] = emin_u[k] * self.scale + h * tref[k];
                }
                let s = source(&x);
                for i in 0..npe {
                    let adv_i: f64 = (0..DIM).map(|k| a[k] * grad[i][k]).sum();
                    let wi = phi[i] + tau * adv_i;
                    for j in 0..npe {
                        let adv_j: f64 = (0..DIM).map(|k| a[k] * grad[j][k]).sum();
                        let diff: f64 = (0..DIM).map(|k| grad[i][k] * grad[j][k]).sum::<f64>();
                        ke[i * npe + j] +=
                            jw * (wi * (inv_dt * phi[j] + adv_j) + self.kappa * diff);
                    }
                    re[i] += jw * wi * (inv_dt * co + s);
                }
            }
            // Scatter.
            let stencils: Vec<Vec<(usize, f64)>> = self.slots[ei]
                .iter()
                .map(|s| match s {
                    SlotRef::Direct(i) => vec![(*i, 1.0)],
                    SlotRef::Hanging(st) => st.clone(),
                })
                .collect();
            for i in 0..npe {
                for (gi, wi) in &stencils[i] {
                    rhs[*gi] += wi * re[i];
                    for j in 0..npe {
                        let v = ke[i * npe + j];
                        if v == 0.0 {
                            continue;
                        }
                        for (gj, wj) in &stencils[j] {
                            coo.add(*gi, *gj, wi * wj * v);
                        }
                    }
                }
            }
        }
        let mut a = coo.build();
        for (i, d) in self.dirichlet.iter().enumerate().take(n) {
            if let Some(v) = *d {
                for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                    a.vals[k] = if a.cols[k] as usize == i { 1.0 } else { 0.0 };
                }
                rhs[i] = v;
            }
        }
        let pre = AsmPrecond::new(&a, (n / 600).max(1), 3);
        let mut c_new = self.c.clone();
        let res = bicgstab(&a, &rhs, &mut c_new, &pre, 1e-9, 1e-12, 10_000);
        self.c = c_new;
        res
    }

    /// Total scalar mass ∫ c dx (lumped).
    pub fn total_mass(&self) -> f64 {
        // Lumped: sum over elements of mean nodal value × volume.
        let npe = self.slots.first().map(|s| s.len()).unwrap_or(0);
        let mut total = 0.0;
        for (ei, e) in self.mesh.elems.iter().enumerate() {
            let vol = (e.bounds_unit().1 * self.scale).powi(DIM as i32);
            let vals = self.gather::<1>(ei, &self.c);
            total += vol * vals.iter().sum::<f64>() / npe as f64;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_geom::RetainBox;
    use carve_sfc::Curve;

    #[test]
    fn pure_diffusion_conserves_and_spreads() {
        let domain = RetainBox::<2>::new([0.0, 0.0], [0.5, 0.5]);
        let mesh = Mesh::build(&domain, Curve::Morton, 4, 4, 1);
        let n = mesh.num_dofs();
        let vel = vec![0.0; n * 2];
        let bc = |_: &[f64; 2], _: NodeFlags| None;
        let mut t = TransportSolver::new(&mesh, &vel, 1e-3, 0.05, 1.0, &bc);
        // Source for a few steps, then free decay; with natural BCs mass is
        // conserved after the source stops.
        let src = |x: &[f64; 2]| {
            let d2 = (x[0] - 0.25f64).powi(2) + (x[1] - 0.25f64).powi(2);
            if d2 < 0.03 * 0.03 {
                10.0
            } else {
                0.0
            }
        };
        for _ in 0..3 {
            let r = t.step(&src);
            assert!(r.converged);
        }
        let m_source = t.total_mass();
        assert!(m_source > 0.0);
        let zero = |_: &[f64; 2]| 0.0;
        for _ in 0..3 {
            t.step(&zero);
        }
        let m_after = t.total_mass();
        assert!(
            (m_after - m_source).abs() < 0.02 * m_source,
            "mass {m_source} -> {m_after}"
        );
        // Peak must move down (diffusion spreads).
        let peak = t.c.iter().cloned().fold(0.0, f64::max);
        assert!(peak > 0.0);
    }

    #[test]
    fn advection_moves_plume_downstream() {
        const H: f64 = 0.25;
        let domain = RetainBox::<2>::channel([1.0, H]);
        let mesh = Mesh::build(&domain, Curve::Morton, 4, 4, 1);
        let n = mesh.num_dofs();
        // Uniform rightward velocity.
        let mut vel = vec![0.0; n * 2];
        for i in 0..n {
            vel[i * 2] = 1.0;
        }
        let bc = |x: &[f64; 2], _: NodeFlags| {
            if x[0] <= 1e-9 {
                Some(0.0) // clean inflow
            } else {
                None
            }
        };
        let mut t = TransportSolver::new(&mesh, &vel, 1e-4, 0.02, 1.0, &bc);
        let src = |x: &[f64; 2]| {
            let d2 = (x[0] - 0.2f64).powi(2) + (x[1] - 0.12f64).powi(2);
            if d2 < 0.002 {
                5.0
            } else {
                0.0
            }
        };
        for _ in 0..10 {
            let r = t.step(&src);
            assert!(r.converged);
        }
        // Centroid of c must sit downstream of the source.
        let mut cx = 0.0;
        let mut cm = 0.0;
        for i in 0..n {
            let x = mesh.nodes.unit_coords(i);
            cx += t.c[i].max(0.0) * x[0];
            cm += t.c[i].max(0.0);
        }
        let centroid = cx / cm;
        assert!(centroid > 0.25, "plume centroid {centroid} not downstream");
        // Nothing dramatic upstream of the source.
        for i in 0..n {
            let x = mesh.nodes.unit_coords(i);
            if x[0] < 0.1 {
                assert!(t.c[i].abs() < 0.2 * t.c.iter().cloned().fold(0.0, f64::max));
            }
        }
    }
}
