//! Elemental VMS-stabilized Navier–Stokes operators (Picard-linearized).
//!
//! Block layout per element: node-major, `(DIM velocities, 1 pressure)` per
//! node. The weak form per element, with advection field `a` frozen from
//! the previous Picard iterate and BDF1 in time:
//!
//! ```text
//! (w, u/Δt + a·∇u) + ν(∇w, ∇u) − (∇·w, p) + (q, ∇·u)
//!   + (a·∇w + ∇q, τ_M r_M(u,p)) + (∇·w, τ_C ∇·u) = (w, u_old/Δt + f) + …
//! ```
//!
//! with `r_M = u/Δt + a·∇u + ∇p − u_old/Δt − f` (the ν Δu term vanishes for
//! linears on cubes), `τ_M = ((2/Δt)² + (2|a|/h)² + (C_I ν/h²)²)^{-1/2}`,
//! `τ_C = h²/(4·d·τ_M)`.

use carve_fem::basis::{gauss_rule, lagrange_deriv_unit, lagrange_eval_unit};
use carve_la::DenseMatrix;

/// Stabilization and material parameters.
#[derive(Clone, Copy, Debug)]
pub struct VmsParams {
    /// Kinematic viscosity (1/Re for unit velocity/length scales).
    pub nu: f64,
    /// BDF1 time step; `f64::INFINITY` for a steady solve.
    pub dt: f64,
    /// Inverse-estimate constant in τ_M (typically 9–36 for linears).
    pub c_i: f64,
}

impl VmsParams {
    pub fn new(nu: f64, dt: f64) -> Self {
        Self { nu, dt, c_i: 36.0 }
    }
}

/// Computes `(τ_M, τ_C)` for element size `h` and local advection speed.
pub fn taus<const DIM: usize>(params: &VmsParams, h: f64, a_norm: f64) -> (f64, f64) {
    let dt_term = if params.dt.is_finite() {
        (2.0 / params.dt).powi(2)
    } else {
        0.0
    };
    let adv = (2.0 * a_norm / h).powi(2);
    let visc = (params.c_i * params.nu / (h * h)).powi(2);
    let tau_m = 1.0 / (dt_term + adv + visc).sqrt().max(1e-300);
    let tau_c = h * h / (4.0 * DIM as f64 * tau_m);
    (tau_m, tau_c)
}

/// Number of element unknowns: `(DIM+1)` per node.
#[inline]
pub fn elem_dofs<const DIM: usize>() -> usize {
    (DIM + 1) * (1usize << DIM)
}

/// Assembles the elemental Picard matrix and right-hand side for one cube
/// element of size `h`, given the element-local previous-iterate velocities
/// `a_nodes` (advection field, `npe × DIM`, node-major) and previous-step
/// velocities `u_old` (same layout), and a body force `f` (evaluated at
/// physical points `emin + h·t_ref`).
pub fn element_ns_system<const DIM: usize>(
    params: &VmsParams,
    emin: &[f64; DIM],
    h: f64,
    a_nodes: &[f64],
    u_old: &[f64],
    f: &dyn Fn(&[f64; DIM]) -> [f64; DIM],
) -> (DenseMatrix, Vec<f64>) {
    let p = 1usize;
    let nb = p + 1;
    let npe = nb.pow(DIM as u32);
    let ndof = (DIM + 1) * npe;
    debug_assert_eq!(a_nodes.len(), npe * DIM);
    debug_assert_eq!(u_old.len(), npe * DIM);
    let quad = gauss_rule(2);
    let nq1 = quad.points.len();
    let nqs = nq1.pow(DIM as u32);
    let mut ke = DenseMatrix::zeros(ndof, ndof);
    let mut rhs = vec![0.0; ndof];
    let vol = h.powi(DIM as i32);
    let inv_dt = if params.dt.is_finite() {
        1.0 / params.dt
    } else {
        0.0
    };
    let nu = params.nu;

    let mut phi = vec![0.0; npe];
    let mut grad = vec![[0.0; DIM]; npe];
    for qlin in 0..nqs {
        // Reference point and weight.
        let mut rem = qlin;
        let mut tref = [0.0; DIM];
        let mut w = 1.0;
        for tk in tref.iter_mut().take(DIM) {
            let qi = rem % nq1;
            rem /= nq1;
            *tk = quad.points[qi];
            w *= quad.weights[qi];
        }
        let jw = w * vol;
        // Basis values / physical gradients.
        for i in 0..npe {
            let mut r = i;
            let mut li = [0usize; DIM];
            for slot in li.iter_mut() {
                *slot = r % nb;
                r /= nb;
            }
            let mut v = 1.0;
            for k in 0..DIM {
                v *= lagrange_eval_unit(p, li[k], tref[k]);
            }
            phi[i] = v;
            for (k, gk) in grad[i].iter_mut().enumerate() {
                let mut g = 1.0;
                for m in 0..DIM {
                    if m == k {
                        g *= lagrange_deriv_unit(p, li[m], tref[m]);
                    } else {
                        g *= lagrange_eval_unit(p, li[m], tref[m]);
                    }
                }
                *gk = g / h;
            }
        }
        // Advection velocity and old velocity at qp.
        let mut a = [0.0; DIM];
        let mut uo = [0.0; DIM];
        for i in 0..npe {
            for k in 0..DIM {
                a[k] += phi[i] * a_nodes[i * DIM + k];
                uo[k] += phi[i] * u_old[i * DIM + k];
            }
        }
        let a_norm = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let (tau_m, tau_c) = taus::<DIM>(params, h, a_norm);
        // Body force at physical point.
        let mut x = [0.0; DIM];
        for k in 0..DIM {
            x[k] = emin[k] + h * tref[k];
        }
        let fx = f(&x);

        // Precompute a·∇φ per shape function.
        let adv_phi: Vec<f64> = (0..npe)
            .map(|i| (0..DIM).map(|k| a[k] * grad[i][k]).sum())
            .collect();

        let vel = |node: usize, comp: usize| node * (DIM + 1) + comp;
        let prs = |node: usize| node * (DIM + 1) + DIM;

        for i in 0..npe {
            for j in 0..npe {
                // --- momentum(test k) x velocity(trial k) -----------------
                // Galerkin: mass/dt + advection + viscosity (componentwise).
                let gal = inv_dt * phi[i] * phi[j]
                    + phi[i] * adv_phi[j]
                    + nu * (0..DIM).map(|k| grad[i][k] * grad[j][k]).sum::<f64>();
                // SUPG: (a·∇w_i) τ_M (u_j/dt + a·∇u_j).
                let supg = adv_phi[i] * tau_m * (inv_dt * phi[j] + adv_phi[j]);
                for k in 0..DIM {
                    ke[(vel(i, k), vel(j, k))] += jw * (gal + supg);
                    // grad-div (τ_C) couples components: (∂_k w)(τ_C ∂_l u_l).
                    for l in 0..DIM {
                        ke[(vel(i, k), vel(j, l))] += jw * tau_c * grad[i][k] * grad[j][l];
                    }
                }
                // --- momentum x pressure: −(∇·w, p) + SUPG ∇p -------------
                for k in 0..DIM {
                    ke[(vel(i, k), prs(j))] +=
                        jw * (-grad[i][k] * phi[j] + adv_phi[i] * tau_m * grad[j][k]);
                }
                // --- continuity x velocity: (q, ∇·u) + PSPG ----------------
                for k in 0..DIM {
                    ke[(prs(i), vel(j, k))] += jw
                        * (phi[i] * grad[j][k]
                            + grad[i][k] * tau_m * (inv_dt * phi[j] + adv_phi[j]));
                }
                // --- continuity x pressure: PSPG Laplacian -----------------
                ke[(prs(i), prs(j))] +=
                    jw * tau_m * (0..DIM).map(|k| grad[i][k] * grad[j][k]).sum::<f64>();
            }
            // --- RHS ------------------------------------------------------
            for k in 0..DIM {
                let r = inv_dt * uo[k] + fx[k];
                rhs[vel(i, k)] += jw * (phi[i] * r + adv_phi[i] * tau_m * r);
                rhs[prs(i)] += jw * grad[i][k] * tau_m * r;
            }
        }
    }
    (ke, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taus_limits() {
        let p = VmsParams::new(0.01, f64::INFINITY);
        // Advection-dominated: τ_M ≈ h/(2|a|).
        let (tm, _) = taus::<2>(&p, 0.1, 10.0);
        assert!((tm - 0.1 / 20.0).abs() / tm < 0.05, "{tm}");
        // Diffusion-dominated: τ_M ≈ h²/(C ν).
        let (tm2, _) = taus::<2>(&p, 0.01, 0.0);
        assert!((tm2 - 0.0001 / (36.0 * 0.01)).abs() / tm2 < 1e-6);
        // Unsteady-dominated: τ_M ≈ Δt/2.
        let pu = VmsParams::new(1e-9, 0.002);
        let (tm3, _) = taus::<2>(&pu, 1.0, 0.0);
        assert!((tm3 - 0.001).abs() < 1e-9);
    }

    #[test]
    fn element_matrix_has_consistent_size() {
        let params = VmsParams::new(0.1, 0.1);
        let npe = 4;
        let a = vec![0.0; npe * 2];
        let uo = vec![0.0; npe * 2];
        let (ke, rhs) =
            element_ns_system::<2>(&params, &[0.0, 0.0], 0.25, &a, &uo, &|_| [0.0, 0.0]);
        assert_eq!(ke.rows, 12);
        assert_eq!(rhs.len(), 12);
    }

    #[test]
    fn stokes_momentum_rows_annihilate_constant_pressure_gradient_free_flow() {
        // With a = 0 and steady Stokes, constant velocity + zero pressure is
        // in the kernel of the viscous+advective part: K * [c,c,0] has zero
        // momentum rows (mass/dt = 0 in steady mode; grad-div of constant =
        // 0; viscous of constant = 0), and continuity rows vanish too.
        let params = VmsParams {
            nu: 0.3,
            dt: f64::INFINITY,
            c_i: 36.0,
        };
        let npe = 4;
        let a = vec![0.0; npe * 2];
        let uo = vec![0.0; npe * 2];
        let (ke, _) = element_ns_system::<2>(&params, &[0.0, 0.0], 0.5, &a, &uo, &|_| [0.0, 0.0]);
        let mut x = vec![0.0; 12];
        for i in 0..npe {
            x[i * 3] = 2.0; // u = const
            x[i * 3 + 1] = -1.0; // v = const
        }
        let mut y = vec![0.0; 12];
        ke.matvec(&x, &mut y);
        for (i, v) in y.iter().enumerate() {
            assert!(v.abs() < 1e-12, "row {i}: {v}");
        }
    }

    #[test]
    fn rhs_scales_with_body_force() {
        let params = VmsParams::new(0.1, f64::INFINITY);
        let npe = 8;
        let a = vec![0.0; npe * 3];
        let uo = vec![0.0; npe * 3];
        let (_, rhs) =
            element_ns_system::<3>(&params, &[0.0; 3], 0.5, &a, &uo, &|_| [1.0, 0.0, 0.0]);
        // Total x-momentum load = volume * 1.
        let total: f64 = (0..npe).map(|i| rhs[i * 4]).sum();
        assert!((total - 0.125).abs() < 1e-12, "{total}");
        // y-momentum load zero.
        let ty: f64 = (0..npe).map(|i| rhs[i * 4 + 1]).sum();
        assert!(ty.abs() < 1e-14);
    }
}
