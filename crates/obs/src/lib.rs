//! Phase-structured observability for the `carve` workspace.
//!
//! The paper's entire evaluation is a breakdown of wall-clock into phases —
//! construction, 2:1 balance, nodal enumeration, matvec top-down / leaf /
//! bottom-up, ghost exchange — so this crate makes that breakdown a
//! first-class subsystem (the FEMPAR / ForestClaw approach) instead of
//! ad-hoc `Instant` calls scattered through the solvers:
//!
//! * [`scope`] — RAII phase timers on a thread-local phase stack. Nested
//!   scopes produce hierarchical paths (`"matvec/leaf"`), so shared code
//!   (e.g. the traversal engine) is attributed to whichever phase is active
//!   in its caller.
//! * [`counter`] — monotonic counters attributed to the innermost active
//!   phase (`"node_copies"` under `"matvec/top_down"`, ghost bytes under
//!   `"ghost_read"`, …).
//! * [`Snapshot`] / [`snapshot`] / [`thread_snapshot`] — per-thread
//!   accumulators, merged on demand. A simulated-MPI rank (one OS thread)
//!   captures its own [`thread_snapshot`]; [`aggregate`] then folds the
//!   per-rank snapshots into min/mean/max summaries the way MPI profilers
//!   (mpiP, IPM) do.
//! * Runtime switch: recording is off by default; enable it with
//!   `CARVE_OBS=1`, [`set_enabled`], or (preferred inside library code that
//!   must measure regardless of the environment) the RAII [`force_enabled`]
//!   guard. The disabled path is a no-op behind an `Option` — one relaxed
//!   atomic load per call site — so instrumentation can stay in production
//!   hot paths.
//!
//! Everything is `std`-only and panic-free (a poisoned registry lock is
//! recovered, not propagated), so any crate in the workspace can depend on
//! it, including `carve-comm` which denies `unwrap`/`expect` crate-wide.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Phase that unattributed counters land in (counter incremented while no
/// scope is active on the thread, e.g. from a worker thread).
pub const UNPHASED: &str = "(unphased)";

// --- Enable switch --------------------------------------------------------

const BASE_UNINIT: u8 = 0;
const BASE_OFF: u8 = 1;
const BASE_ON: u8 = 2;

/// Lazily-initialized base flag (`CARVE_OBS` env; overridable by
/// [`set_enabled`]).
static BASE: AtomicU8 = AtomicU8::new(BASE_UNINIT);
/// Refcount of live [`force_enabled`] guards; recording is on while > 0.
static FORCE: AtomicUsize = AtomicUsize::new(0);

fn base_enabled() -> bool {
    match BASE.load(Ordering::Relaxed) {
        BASE_OFF => false,
        BASE_ON => true,
        _ => {
            let on = std::env::var("CARVE_OBS")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            BASE.store(if on { BASE_ON } else { BASE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Is recording currently enabled (env flag, [`set_enabled`], or a live
/// [`force_enabled`] guard)?
pub fn enabled() -> bool {
    FORCE.load(Ordering::Relaxed) > 0 || base_enabled()
}

/// Overrides the `CARVE_OBS` environment switch process-wide.
pub fn set_enabled(on: bool) {
    BASE.store(if on { BASE_ON } else { BASE_OFF }, Ordering::Relaxed);
}

/// RAII handle from [`force_enabled`]; recording stays on until every
/// outstanding guard is dropped.
pub struct EnabledGuard(());

/// Forces recording on for the guard's lifetime, regardless of `CARVE_OBS`.
/// Refcounted, so concurrent measurement sections (e.g. two calibration
/// tests) cannot switch each other off mid-run.
#[must_use = "recording stops when the guard is dropped"]
pub fn force_enabled() -> EnabledGuard {
    FORCE.fetch_add(1, Ordering::SeqCst);
    EnabledGuard(())
}

impl Drop for EnabledGuard {
    fn drop(&mut self) {
        FORCE.fetch_sub(1, Ordering::SeqCst);
    }
}

// --- Data model -----------------------------------------------------------

/// Accumulated statistics of one phase path on one thread (or merged set of
/// threads): call count, inclusive seconds, and counters raised inside it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseStats {
    pub calls: u64,
    pub secs: f64,
    pub counters: BTreeMap<String, u64>,
}

/// A point-in-time copy of accumulated phase data. Ordered map, so
/// serialization and comparison are deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub phases: BTreeMap<String, PhaseStats>,
}

impl Snapshot {
    /// Adds `other`'s phases and counters into `self`.
    pub fn merge(&mut self, other: &Snapshot) {
        for (path, st) in &other.phases {
            let e = self.phases.entry(path.clone()).or_default();
            e.calls += st.calls;
            e.secs += st.secs;
            for (k, v) in &st.counters {
                *e.counters.entry(k.clone()).or_insert(0) += v;
            }
        }
    }

    /// Statistics accumulated since `baseline` was captured (phases that did
    /// not advance are dropped). Counters and calls subtract saturating, so
    /// a `reset` between the two snapshots degrades gracefully.
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (path, st) in &self.phases {
            let base = baseline.phases.get(path);
            let calls = st.calls - base.map_or(0, |b| b.calls.min(st.calls));
            let secs = (st.secs - base.map_or(0.0, |b| b.secs)).max(0.0);
            let mut counters = BTreeMap::new();
            for (k, v) in &st.counters {
                let bv = base.and_then(|b| b.counters.get(k)).copied().unwrap_or(0);
                let d = v.saturating_sub(bv);
                if d > 0 {
                    counters.insert(k.clone(), d);
                }
            }
            if calls > 0 || secs > 0.0 || !counters.is_empty() {
                out.phases.insert(
                    path.clone(),
                    PhaseStats {
                        calls,
                        secs,
                        counters,
                    },
                );
            }
        }
        out
    }

    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

// --- Per-thread recording -------------------------------------------------

#[derive(Default)]
struct ThreadData {
    /// Stack of full phase paths currently open on this thread.
    stack: Vec<String>,
    snap: Snapshot,
}

/// Every thread that ever recorded, kept alive past thread death so global
/// snapshots see completed worker/rank threads.
static ALL_THREADS: Mutex<Vec<Arc<Mutex<ThreadData>>>> = Mutex::new(Vec::new());

/// Poison-immune lock: observability must never take a solver down.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    static DETACHED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static TLS: Arc<Mutex<ThreadData>> = {
        let d = Arc::new(Mutex::new(ThreadData::default()));
        if !DETACHED.with(std::cell::Cell::get) {
            lock(&ALL_THREADS).push(Arc::clone(&d));
        }
        d
    };
}

/// Marks the calling thread as *detached*: its recorder is never registered
/// in the process-wide registry, so [`snapshot`] / [`aggregate`] consumers
/// do not see (or double-count) it. Short-lived worker threads that hand
/// their [`thread_snapshot`] back to a parent rank via [`absorb_rebased`]
/// call this first — otherwise each fork-join would leak a registry entry
/// *and* report the same phases twice.
///
/// Must be called before the thread's first `scope`/`counter`; once the
/// recorder exists, detaching is a no-op.
pub fn detach_thread() {
    DETACHED.with(|c| c.set(true));
}

/// Merges a worker thread's snapshot into the *calling* thread's recorder,
/// re-rooting every phase path under the caller's innermost open scope.
/// A worker that recorded `"top_down"` while the caller holds a `"matvec"`
/// scope lands as `"matvec/top_down"` — exactly where the same work would
/// have been attributed had it run inline. Seconds merge additively, so
/// absorbed phases report aggregate worker time, not wall-clock.
pub fn absorb_rebased(worker: &Snapshot) {
    if !enabled() || worker.is_empty() {
        return;
    }
    let cell = TLS.with(Arc::clone);
    let mut d = lock(&cell);
    let prefix = d.stack.last().cloned();
    for (path, st) in &worker.phases {
        let full = match &prefix {
            Some(p) => format!("{p}/{path}"),
            None => path.clone(),
        };
        let e = d.snap.phases.entry(full).or_default();
        e.calls += st.calls;
        e.secs += st.secs;
        for (k, v) in &st.counters {
            *e.counters.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// Open phase; records `{calls += 1, secs += elapsed}` under its full
/// hierarchical path when dropped.
pub struct PhaseGuard {
    path: String,
    start: Instant,
    cell: Arc<Mutex<ThreadData>>,
}

/// Opens a phase scope named `name`, nested under the innermost open scope
/// of this thread (`"top_down"` inside `"matvec"` records as
/// `"matvec/top_down"`). Returns `None` — a free no-op — when recording is
/// disabled. Bind the result (`let _obs = scope(..)`) so the guard lives to
/// the end of the region being timed.
pub fn scope(name: &str) -> Option<PhaseGuard> {
    if !enabled() {
        return None;
    }
    let cell = TLS.with(Arc::clone);
    let path = {
        let mut d = lock(&cell);
        let path = match d.stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_owned(),
        };
        d.stack.push(path.clone());
        path
    };
    Some(PhaseGuard {
        path,
        start: Instant::now(),
        cell,
    })
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        let mut d = lock(&self.cell);
        // Guards may be dropped out of LIFO order (interleaved scopes);
        // remove this guard's own entry, wherever it sits.
        if let Some(pos) = d.stack.iter().rposition(|p| *p == self.path) {
            d.stack.remove(pos);
        }
        let e = d
            .snap
            .phases
            .entry(std::mem::take(&mut self.path))
            .or_default();
        e.calls += 1;
        e.secs += secs;
    }
}

/// Adds `delta` to counter `name` under the innermost open phase of the
/// calling thread ([`UNPHASED`] when none). No-op when disabled.
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let cell = TLS.with(Arc::clone);
    let mut d = lock(&cell);
    let path = d
        .stack
        .last()
        .cloned()
        .unwrap_or_else(|| UNPHASED.to_owned());
    let e = d.snap.phases.entry(path).or_default();
    *e.counters.entry(name.to_owned()).or_insert(0) += delta;
}

/// Snapshot of the calling thread's accumulated data only. This is the
/// rank-local capture: immune to whatever other threads (other ranks, other
/// tests in the same process) are concurrently recording.
pub fn thread_snapshot() -> Snapshot {
    let cell = TLS.with(Arc::clone);
    let d = lock(&cell);
    d.snap.clone()
}

/// Merged snapshot across every thread that has recorded in this process,
/// including threads that have since exited.
pub fn snapshot() -> Snapshot {
    let mut out = Snapshot::default();
    let all = lock(&ALL_THREADS);
    for cell in all.iter() {
        let d = lock(cell);
        out.merge(&d.snap);
    }
    out
}

/// Clears accumulated data on every thread (open scope stacks are kept, so
/// a reset mid-phase still records subsequent exits consistently) and drops
/// registry entries of threads that have exited.
pub fn reset() {
    let mut all = lock(&ALL_THREADS);
    for cell in all.iter() {
        lock(cell).snap = Snapshot::default();
    }
    all.retain(|cell| Arc::strong_count(cell) > 1 || !lock(cell).snap.is_empty());
}

// --- Cross-rank aggregation ----------------------------------------------

/// Min/mean/max of a phase's seconds over the ranks where it appears.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SecsSummary {
    pub min: f64,
    pub mean: f64,
    pub max: f64,
}

/// One phase aggregated across ranks: calls and counters are summed, secs
/// summarized, `ranks` counts the ranks on which the phase appeared.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AggPhase {
    pub calls: u64,
    pub ranks: u64,
    pub secs: SecsSummary,
    pub counters: BTreeMap<String, u64>,
}

/// Per-rank snapshots folded into the MPI-profiler-style summary.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Number of rank snapshots aggregated.
    pub ranks: u64,
    pub phases: BTreeMap<String, AggPhase>,
}

/// Folds per-rank snapshots into a [`Report`]: per phase, calls/counters sum
/// across ranks and seconds reduce to min/mean/max over the ranks where the
/// phase appeared.
pub fn aggregate(ranks: &[Snapshot]) -> Report {
    let mut phases: BTreeMap<String, AggPhase> = BTreeMap::new();
    for snap in ranks {
        for (path, st) in &snap.phases {
            let e = phases.entry(path.clone()).or_default();
            if e.ranks == 0 {
                e.secs = SecsSummary {
                    min: st.secs,
                    mean: 0.0,
                    max: st.secs,
                };
            } else {
                e.secs.min = e.secs.min.min(st.secs);
                e.secs.max = e.secs.max.max(st.secs);
            }
            e.secs.mean += st.secs; // divided by ranks below
            e.ranks += 1;
            e.calls += st.calls;
            for (k, v) in &st.counters {
                *e.counters.entry(k.clone()).or_insert(0) += v;
            }
        }
    }
    for p in phases.values_mut() {
        p.secs.mean /= p.ranks.max(1) as f64;
    }
    Report {
        ranks: ranks.len() as u64,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_scopes_build_hierarchical_paths() {
        let _e = force_enabled();
        let before = thread_snapshot();
        {
            let _a = scope("alpha");
            {
                let _b = scope("beta");
                std::thread::yield_now();
            }
            {
                let _b = scope("beta");
            }
        }
        let d = thread_snapshot().diff(&before);
        assert_eq!(d.phases["alpha"].calls, 1);
        assert_eq!(d.phases["alpha/beta"].calls, 2);
        assert!(d.phases["alpha"].secs >= 0.0);
        assert!(!d.phases.contains_key("beta"), "inner scope must nest");
    }

    #[test]
    fn interleaved_guards_record_their_own_paths() {
        let _e = force_enabled();
        let before = thread_snapshot();
        let a = scope("ia");
        let b = scope("ib"); // path fixed at creation: "ia/ib"
        drop(a); // dropped before b — non-LIFO
        drop(b);
        let d = thread_snapshot().diff(&before);
        assert_eq!(d.phases["ia"].calls, 1);
        assert_eq!(d.phases["ia/ib"].calls, 1);
        // And the stack fully unwound: a fresh scope is top-level again.
        let before2 = thread_snapshot();
        drop(scope("after"));
        let d2 = thread_snapshot().diff(&before2);
        assert_eq!(d2.phases["after"].calls, 1);
    }

    #[test]
    fn counters_attach_to_innermost_phase() {
        let _e = force_enabled();
        let before = thread_snapshot();
        {
            let _a = scope("cphase");
            counter("widgets", 3);
            counter("widgets", 4);
        }
        counter("loose", 2);
        let d = thread_snapshot().diff(&before);
        assert_eq!(d.phases["cphase"].counters["widgets"], 7);
        assert_eq!(d.phases[UNPHASED].counters["loose"], 2);
    }

    #[test]
    fn disabled_mode_is_a_complete_noop() {
        // No force guard, base off: scope returns None, nothing recorded.
        let was = enabled();
        set_enabled(false);
        assert!(FORCE.load(Ordering::SeqCst) == 0 || was, "test isolation");
        if FORCE.load(Ordering::SeqCst) == 0 {
            let before = thread_snapshot();
            assert!(scope("ghost-phase").is_none());
            counter("ghost-counter", 99);
            let d = thread_snapshot().diff(&before);
            assert!(
                !d.phases.contains_key("ghost-phase") && !d.phases.contains_key(UNPHASED),
                "disabled mode recorded data: {d:?}"
            );
        }
    }

    #[test]
    fn cross_thread_snapshot_merges_worker_data() {
        let _e = force_enabled();
        let before = snapshot();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _g = scope("worker");
                    counter("items", i + 1);
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let d = snapshot().diff(&before);
        assert_eq!(d.phases["worker"].calls, 4);
        assert_eq!(d.phases["worker"].counters["items"], 1 + 2 + 3 + 4);
    }

    #[test]
    fn detached_threads_stay_out_of_global_snapshots() {
        let _e = force_enabled();
        let before = snapshot();
        let worker_snap = std::thread::spawn(|| {
            detach_thread();
            {
                let _g = scope("detached-phase");
                counter("detached-items", 5);
            }
            thread_snapshot()
        })
        .join()
        .expect("worker");
        // The worker saw its own data locally…
        assert_eq!(worker_snap.phases["detached-phase"].calls, 1);
        // …but the global registry never did.
        let d = snapshot().diff(&before);
        assert!(
            !d.phases.contains_key("detached-phase"),
            "detached thread leaked into global snapshot: {d:?}"
        );
    }

    #[test]
    fn absorb_rebased_nests_under_innermost_scope() {
        let _e = force_enabled();
        let mut worker = Snapshot::default();
        worker.phases.insert(
            "top_down".into(),
            PhaseStats {
                calls: 3,
                secs: 0.5,
                counters: BTreeMap::from([("node_copies".to_string(), 7)]),
            },
        );
        let before = thread_snapshot();
        {
            let _m = scope("outer");
            absorb_rebased(&worker);
            absorb_rebased(&worker);
        }
        let d = thread_snapshot().diff(&before);
        assert_eq!(d.phases["outer/top_down"].calls, 6);
        assert_eq!(d.phases["outer/top_down"].counters["node_copies"], 14);
        assert!(!d.phases.contains_key("top_down"), "must rebase, not copy");
        // Without an open scope, paths pass through unprefixed.
        let before2 = thread_snapshot();
        absorb_rebased(&worker);
        let d2 = thread_snapshot().diff(&before2);
        assert_eq!(d2.phases["top_down"].calls, 3);
    }

    #[test]
    fn aggregate_summarizes_min_mean_max() {
        let mk = |secs: f64, calls: u64| {
            let mut s = Snapshot::default();
            s.phases.insert(
                "ph".into(),
                PhaseStats {
                    calls,
                    secs,
                    counters: BTreeMap::from([("c".to_string(), calls)]),
                },
            );
            s
        };
        let r = aggregate(&[mk(1.0, 2), mk(3.0, 4), mk(2.0, 6)]);
        assert_eq!(r.ranks, 3);
        let p = &r.phases["ph"];
        assert_eq!(p.calls, 12);
        assert_eq!(p.ranks, 3);
        assert_eq!(p.secs.min, 1.0);
        assert_eq!(p.secs.max, 3.0);
        assert!((p.secs.mean - 2.0).abs() < 1e-15);
        assert_eq!(p.counters["c"], 12);
    }
}
