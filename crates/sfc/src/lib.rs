//! Space-filling-curve infrastructure for linear (in)complete octrees.
//!
//! This crate provides the lowest-level substrate of the `carve` workspace:
//!
//! * [`Octant`] — a dimension-agnostic octree key (quadrant in 2D, octant in
//!   3D): an anchor on an integer lattice plus a refinement level.
//! * [`Curve`] / [`SfcState`] — the *SFC oracle* of Algorithms 1–2 of the
//!   paper: given the curve state of a subtree, it maps SFC child ranks to
//!   Morton child numbers (`sfc2Morton`) and produces the child state
//!   (`I.child(c)`). Both Morton and Hilbert (any dimension, via Hamilton's
//!   gray-code construction) are supported.
//! * [`treesort()`](treesort::treesort) — the comparison-free MSD radix "TreeSort" of
//!   Sundar/Fernando/Ishii: buckets are permuted at every level according to
//!   the SFC, so one pass over the data per level yields SFC-sorted octants.
//! * neighbor / ancestry utilities used by 2:1 balancing (Algorithm 5).
//!
//! All algorithms are dimension-agnostic through `const DIM: usize`; the rest
//! of the workspace instantiates `DIM = 2` and `DIM = 3`.

pub mod morton;
pub mod octant;
pub mod oracle;
pub mod treesort;

pub use octant::{Octant, MAX_LEVEL};
pub use oracle::{Curve, SfcState};
pub use treesort::{sfc_cmp, treesort, treesort_by_key};

/// Number of children of a subtree in `dim` dimensions.
pub const fn num_children(dim: usize) -> usize {
    1 << dim
}

/// Number of potential same-level neighbors (face+edge+corner) in `dim`
/// dimensions, i.e. `3^dim - 1`.
pub const fn num_neighbors(dim: usize) -> usize {
    let mut n = 1;
    let mut i = 0;
    while i < dim {
        n *= 3;
        i += 1;
    }
    n - 1
}
