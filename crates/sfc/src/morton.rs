//! Point-order utilities: Morton (Z-order) comparison of lattice points
//! without constructing interleaved indices (Chan's most-significant-bit
//! trick), used to TreeSort nodal coordinates in §3.4.

use crate::octant::{Octant, MAX_LEVEL, ROOT_SIDE};
use std::cmp::Ordering;

/// True if `msb(a) < msb(b)` (with `msb(0) = -inf`).
#[inline]
fn less_msb(a: u64, b: u64) -> bool {
    a < b && a < (a ^ b)
}

/// Compares two lattice points in Morton (Z-curve) order.
///
/// This is Chan's comparison: the axis whose coordinates differ in the
/// highest bit dominates; ties broken by lower axes implicitly through the
/// scan. Total order; equal only for identical points.
#[inline]
pub fn point_cmp_morton<const DIM: usize>(a: &[u64; DIM], b: &[u64; DIM]) -> Ordering {
    let mut dominant = 0usize;
    let mut x = a[0] ^ b[0];
    for k in 1..DIM {
        let y = a[k] ^ b[k];
        // On equal msb positions the higher axis index dominates, matching
        // the interleave convention where axis k occupies bit DIM*b + k.
        if !less_msb(y, x) {
            dominant = k;
            x = y;
        }
    }
    a[dominant].cmp(&b[dominant])
}

/// The deepest-level octant containing the lattice point `p` (coordinates on
/// the `[0, ROOT_SIDE]` closed lattice; the far domain boundary is clamped
/// inward so every point maps to an existing cell).
///
/// Used to give nodal points an octant key comparable against partition
/// splitters for ownership decisions.
pub fn finest_cell_of_point<const DIM: usize>(p: &[u64; DIM]) -> Octant<DIM> {
    let mut anchor = [0u32; DIM];
    for k in 0..DIM {
        debug_assert!(p[k] <= ROOT_SIDE as u64);
        anchor[k] = (p[k].min(ROOT_SIDE as u64 - 1)) as u32;
    }
    Octant {
        anchor,
        level: MAX_LEVEL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interleave2(p: &[u64; 2]) -> u128 {
        let mut out = 0u128;
        for bit in 0..64 {
            out |= (((p[0] >> bit) & 1) as u128) << (2 * bit);
            out |= (((p[1] >> bit) & 1) as u128) << (2 * bit + 1);
        }
        out
    }

    #[test]
    fn matches_explicit_interleave_2d() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let a = [rng.gen_range(0..1u64 << 40), rng.gen_range(0..1u64 << 40)];
            let b = [rng.gen_range(0..1u64 << 40), rng.gen_range(0..1u64 << 40)];
            assert_eq!(
                point_cmp_morton(&a, &b),
                interleave2(&a).cmp(&interleave2(&b)),
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn total_order_3d() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let mut pts: Vec<[u64; 3]> = (0..500)
            .map(|_| {
                [
                    rng.gen_range(0..1u64 << 20),
                    rng.gen_range(0..1u64 << 20),
                    rng.gen_range(0..1u64 << 20),
                ]
            })
            .collect();
        pts.sort_by(point_cmp_morton);
        for w in pts.windows(2) {
            assert_ne!(point_cmp_morton(&w[0], &w[1]), Ordering::Greater);
            // antisymmetry
            if point_cmp_morton(&w[0], &w[1]) == Ordering::Less {
                assert_eq!(point_cmp_morton(&w[1], &w[0]), Ordering::Greater);
            }
        }
    }

    #[test]
    fn finest_cell_clamps_far_boundary() {
        let p = [ROOT_SIDE as u64, 0];
        let c = finest_cell_of_point::<2>(&p);
        assert_eq!(c.anchor[0], ROOT_SIDE - 1);
        assert!(c.closed_contains_point(&p));
    }
}
