//! Octree keys: anchors on an integer lattice plus a refinement level.

/// Maximum refinement depth of the tree.
///
/// The root occupies the integer lattice `[0, 2^MAX_LEVEL)^DIM`; an octant at
/// level `l` has integer side `2^(MAX_LEVEL - l)`. The paper's experiments use
/// levels up to 14; 21 leaves headroom while `anchor * p` for order `p <= 2`
/// node lattices still fits comfortably in `u64`.
pub const MAX_LEVEL: u8 = 21;

/// Integer side length of the root octant.
pub const ROOT_SIDE: u32 = 1 << MAX_LEVEL;

/// A quadrant (2D) / octant (3D): the fundamental key of a linear octree.
///
/// `anchor` is the lexicographically smallest corner of the region, on the
/// integer lattice of the deepest level; `level` is the depth in the tree
/// (root = 0). The region covered is the half-open cube
/// `[anchor, anchor + side)` in integer coordinates; its closure `ē` (used by
/// the subdomain classification of §3.1) is the closed cube.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Octant<const DIM: usize> {
    /// Lattice coordinates of the minimum corner. Each must be a multiple of
    /// `self.side()`.
    pub anchor: [u32; DIM],
    /// Depth in the tree; `0 ..= MAX_LEVEL`.
    pub level: u8,
}

impl<const DIM: usize> Octant<DIM> {
    /// The root octant covering the whole unit cube.
    pub const ROOT: Self = Self {
        anchor: [0; DIM],
        level: 0,
    };

    /// Creates an octant, debug-asserting anchor alignment.
    pub fn new(anchor: [u32; DIM], level: u8) -> Self {
        debug_assert!(level <= MAX_LEVEL);
        let side = 1u32 << (MAX_LEVEL - level);
        for &a in &anchor {
            debug_assert_eq!(a % side, 0, "anchor not aligned to level {level}");
            debug_assert!(a < ROOT_SIDE);
        }
        Self { anchor, level }
    }

    /// Integer side length.
    #[inline]
    pub fn side(&self) -> u32 {
        1 << (MAX_LEVEL - self.level)
    }

    /// The `child_morton`-th child (Morton child number: bit `k` of
    /// `child_morton` is the offset along axis `k`).
    #[inline]
    pub fn child(&self, child_morton: usize) -> Self {
        debug_assert!(self.level < MAX_LEVEL);
        debug_assert!(child_morton < (1 << DIM));
        let half = self.side() >> 1;
        let mut anchor = self.anchor;
        for (k, a) in anchor.iter_mut().enumerate() {
            if (child_morton >> k) & 1 == 1 {
                *a += half;
            }
        }
        Self {
            anchor,
            level: self.level + 1,
        }
    }

    /// The parent octant (panics on the root).
    #[inline]
    pub fn parent(&self) -> Self {
        assert!(self.level > 0, "root has no parent");
        self.ancestor_at(self.level - 1)
    }

    /// The ancestor at the given (coarser or equal) level.
    #[inline]
    pub fn ancestor_at(&self, level: u8) -> Self {
        debug_assert!(level <= self.level);
        let side = 1u32 << (MAX_LEVEL - level);
        let mask = !(side - 1);
        let mut anchor = self.anchor;
        for a in anchor.iter_mut() {
            *a &= mask;
        }
        Self { anchor, level }
    }

    /// Morton child number of this octant within its parent.
    #[inline]
    pub fn child_number(&self) -> usize {
        debug_assert!(self.level > 0);
        self.child_bits_at(self.level)
    }

    /// Morton child number of the level-`l` ancestor of this octant within
    /// the level-`l-1` ancestor: for each axis, bit `MAX_LEVEL - l` of the
    /// anchor coordinate.
    #[inline]
    pub fn child_bits_at(&self, l: u8) -> usize {
        debug_assert!(l >= 1 && l <= self.level);
        let shift = MAX_LEVEL - l;
        let mut c = 0usize;
        for k in 0..DIM {
            c |= (((self.anchor[k] >> shift) & 1) as usize) << k;
        }
        c
    }

    /// True if `self` is a strict ancestor of `other`.
    #[inline]
    pub fn is_ancestor_of(&self, other: &Self) -> bool {
        other.level > self.level && other.ancestor_at(self.level) == *self
    }

    /// True if `self` is `other` or an ancestor of it.
    #[inline]
    pub fn is_ancestor_or_self(&self, other: &Self) -> bool {
        other.level >= self.level && other.ancestor_at(self.level) == *self
    }

    /// True if the *closed* regions of the two octants intersect (they share
    /// at least a face, edge, or corner, or one contains the other).
    pub fn closed_regions_touch(&self, other: &Self) -> bool {
        for k in 0..DIM {
            let a0 = self.anchor[k] as u64;
            let a1 = a0 + self.side() as u64;
            let b0 = other.anchor[k] as u64;
            let b1 = b0 + other.side() as u64;
            if a1 < b0 || b1 < a0 {
                return false;
            }
        }
        true
    }

    /// All existing same-level neighbors (face, edge, and corner): up to
    /// `3^DIM - 1` octants, fewer at the domain boundary. This is
    /// `MakeNeighbors` of Algorithm 5.
    pub fn neighbors(&self) -> Vec<Self> {
        let side = self.side() as i64;
        let mut out = Vec::with_capacity(crate::num_neighbors(DIM));
        let n_combos = 3usize.pow(DIM as u32);
        'combo: for combo in 0..n_combos {
            let mut c = combo;
            let mut anchor = [0u32; DIM];
            let mut is_self = true;
            for (a, &sa) in anchor.iter_mut().zip(&self.anchor) {
                let off = (c % 3) as i64 - 1; // -1, 0, +1
                c /= 3;
                if off != 0 {
                    is_self = false;
                }
                let coord = sa as i64 + off * side;
                if coord < 0 || coord >= ROOT_SIDE as i64 {
                    continue 'combo;
                }
                *a = coord as u32;
            }
            if !is_self {
                out.push(Self {
                    anchor,
                    level: self.level,
                });
            }
        }
        out
    }

    /// Geometric bounds in the unit cube `\[0,1\]^DIM`: `(min, side_length)`.
    pub fn bounds_unit(&self) -> ([f64; DIM], f64) {
        let scale = 1.0 / ROOT_SIDE as f64;
        let mut min = [0.0; DIM];
        for (m, &a) in min.iter_mut().zip(&self.anchor) {
            *m = a as f64 * scale;
        }
        (min, self.side() as f64 * scale)
    }

    /// Center of the octant in the unit cube.
    pub fn center_unit(&self) -> [f64; DIM] {
        let (min, h) = self.bounds_unit();
        let mut c = min;
        for x in c.iter_mut() {
            *x += 0.5 * h;
        }
        c
    }

    /// True if the closed region contains the integer lattice point `p`.
    pub fn closed_contains_point(&self, p: &[u64; DIM]) -> bool {
        for (&pk, &ak) in p.iter().zip(&self.anchor) {
            let a = ak as u64;
            if pk < a || pk > a + self.side() as u64 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Oct3 = Octant<3>;
    type Oct2 = Octant<2>;

    #[test]
    fn root_props() {
        let r = Oct3::ROOT;
        assert_eq!(r.side(), ROOT_SIDE);
        assert_eq!(r.level, 0);
        assert_eq!(r.bounds_unit().1, 1.0);
    }

    #[test]
    fn child_parent_roundtrip() {
        let r = Oct3::ROOT;
        for c in 0..8 {
            let ch = r.child(c);
            assert_eq!(ch.level, 1);
            assert_eq!(ch.parent(), r);
            assert_eq!(ch.child_number(), c);
            for c2 in 0..8 {
                let gch = ch.child(c2);
                assert_eq!(gch.parent(), ch);
                assert_eq!(gch.child_number(), c2);
                assert_eq!(gch.ancestor_at(0), r);
                assert!(r.is_ancestor_of(&gch));
                assert!(ch.is_ancestor_of(&gch));
                assert!(!gch.is_ancestor_of(&ch));
            }
        }
    }

    #[test]
    fn child_bits_match_child_number() {
        let o = Oct3::ROOT.child(5).child(3).child(6);
        assert_eq!(o.child_bits_at(1), 5);
        assert_eq!(o.child_bits_at(2), 3);
        assert_eq!(o.child_bits_at(3), 6);
    }

    #[test]
    fn neighbor_counts() {
        // An interior octant has 3^d - 1 neighbors; corners have fewer.
        let interior = Oct2::ROOT.child(0).child(3); // interior in the unit square
        assert_eq!(interior.neighbors().len(), 8);
        let corner = Oct2::ROOT.child(0).child(0);
        assert_eq!(corner.neighbors().len(), 3);
        let interior3 = Oct3::ROOT.child(0).child(7);
        assert_eq!(interior3.neighbors().len(), 26);
        let corner3 = Oct3::ROOT.child(0).child(0);
        assert_eq!(corner3.neighbors().len(), 7);
    }

    #[test]
    fn neighbors_touch_and_same_level() {
        let o = Oct3::ROOT.child(1).child(4).child(2);
        for n in o.neighbors() {
            assert_eq!(n.level, o.level);
            assert!(o.closed_regions_touch(&n));
            assert_ne!(n, o);
        }
    }

    #[test]
    fn closed_regions_touch_cases() {
        let a = Oct2::ROOT.child(0); // [0, .5)^2
        let b = Oct2::ROOT.child(3); // [.5, 1)^2 — touch at corner
        assert!(a.closed_regions_touch(&b));
        let c = Oct2::ROOT.child(3).child(3);
        assert!(!a.closed_regions_touch(&c));
        // parent/child overlap
        assert!(a.closed_regions_touch(&a.child(2)));
    }

    #[test]
    fn contains_point_closed() {
        let o = Oct2::ROOT.child(3); // [half, root]^2 closed
        let h = (ROOT_SIDE / 2) as u64;
        let r = ROOT_SIDE as u64;
        assert!(o.closed_contains_point(&[h, h]));
        assert!(o.closed_contains_point(&[r, r]));
        assert!(!o.closed_contains_point(&[h - 1, h]));
    }
}
