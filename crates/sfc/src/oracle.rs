//! SFC oracles: the `I` of Algorithms 1–2.
//!
//! An oracle answers, for a subtree in a given *curve state*, (a) which Morton
//! child corresponds to the `c`-th child along the space-filling curve
//! (`sfc2Morton`), and (b) what the curve state of that child subtree is
//! (`I.child(c)`).
//!
//! The Morton curve is stateless (the oracle is the identity). The Hilbert
//! curve uses Hamilton's compact-Hilbert construction (*Compact Hilbert
//! Indices*, Dalhousie CS-2006-07): a state is an (entry corner `e`,
//! intra-subcube direction `d`) pair, child orders come from the Gray code,
//! and state composition uses bit rotations. This works in any dimension.

/// Which space-filling curve orders the octree.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Curve {
    /// Morton / Z-order: cheap, stateless, more partition surface.
    #[default]
    Morton,
    /// Hilbert order: face-continuous, better partition locality.
    Hilbert,
}

/// Curve state of a subtree (entry corner and direction for Hilbert;
/// ignored for Morton).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SfcState {
    e: u16,
    d: u8,
}

/// Gray code.
#[inline]
fn gc(i: u32) -> u32 {
    i ^ (i >> 1)
}

/// Inverse Gray code: prefix-xor scan.
#[inline]
fn gc_inv(g: u32) -> u32 {
    let mut acc = 0u32;
    let mut x = g;
    while x != 0 {
        acc ^= x;
        x >>= 1;
    }
    acc
}

/// Number of trailing set bits.
#[inline]
fn trailing_ones(i: u32) -> u32 {
    i.trailing_ones()
}

/// Rotate `b` left by `k` within `n` bits.
#[inline]
fn rol(b: u32, k: u32, n: u32) -> u32 {
    let k = k % n;
    let mask = (1u32 << n) - 1;
    ((b << k) | (b >> (n - k).min(31))) & mask
}

/// Rotate `b` right by `k` within `n` bits.
#[inline]
fn ror(b: u32, k: u32, n: u32) -> u32 {
    let k = k % n;
    rol(b, n - k, n)
}

/// Hamilton's `e(i)`: entry corner of the `i`-th subcube along the curve.
#[inline]
fn entry(i: u32) -> u32 {
    if i == 0 {
        0
    } else {
        gc(2 * ((i - 1) / 2))
    }
}

/// Hamilton's `d(i)`: intra-subcube direction of the `i`-th subcube.
#[inline]
fn direction(i: u32, n: u32) -> u32 {
    if i == 0 {
        0
    } else if i.is_multiple_of(2) {
        trailing_ones(i - 1) % n
    } else {
        trailing_ones(i) % n
    }
}

impl SfcState {
    /// State of the root subtree.
    pub const ROOT: Self = Self { e: 0, d: 0 };

    /// Morton child number of the `sfc_rank`-th child along the curve
    /// (`sfc2Morton` in Algorithm 2).
    #[inline]
    pub fn sfc_to_morton(&self, curve: Curve, dim: usize, sfc_rank: usize) -> usize {
        debug_assert!(sfc_rank < (1 << dim));
        match curve {
            Curve::Morton => sfc_rank,
            Curve::Hilbert => {
                let n = dim as u32;
                (rol(gc(sfc_rank as u32), self.d as u32 + 1, n) ^ self.e as u32) as usize
            }
        }
    }

    /// SFC rank of the Morton child number `morton` — the bucket permutation
    /// used by TreeSort and by the seed-bucketing of Algorithm 2.
    #[inline]
    pub fn morton_to_sfc(&self, curve: Curve, dim: usize, morton: usize) -> usize {
        debug_assert!(morton < (1 << dim));
        match curve {
            Curve::Morton => morton,
            Curve::Hilbert => {
                let n = dim as u32;
                gc_inv(ror(morton as u32 ^ self.e as u32, self.d as u32 + 1, n)) as usize
            }
        }
    }

    /// Curve state of the `sfc_rank`-th child subtree (`I.child(c)`).
    #[inline]
    pub fn child(&self, curve: Curve, dim: usize, sfc_rank: usize) -> Self {
        match curve {
            Curve::Morton => *self,
            Curve::Hilbert => {
                let n = dim as u32;
                let w = sfc_rank as u32;
                let e = self.e as u32 ^ rol(entry(w), self.d as u32 + 1, n);
                let d = (self.d as u32 + direction(w, n) + 1) % n;
                Self {
                    e: e as u16,
                    d: d as u8,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_basics() {
        for i in 0..64 {
            assert_eq!(gc_inv(gc(i)), i);
        }
        // Consecutive gray codes differ in exactly one bit.
        for i in 0..63u32 {
            assert_eq!((gc(i) ^ gc(i + 1)).count_ones(), 1);
        }
    }

    #[test]
    fn rotations() {
        assert_eq!(rol(0b001, 1, 3), 0b010);
        assert_eq!(rol(0b100, 1, 3), 0b001);
        assert_eq!(ror(rol(0b101, 2, 3), 2, 3), 0b101);
        for b in 0..8u32 {
            for k in 0..6 {
                assert_eq!(ror(rol(b, k, 3), k, 3), b);
            }
        }
    }

    fn check_bijection(curve: Curve, dim: usize, st: SfcState) {
        let nch = 1usize << dim;
        let mut seen = vec![false; nch];
        for r in 0..nch {
            let m = st.sfc_to_morton(curve, dim, r);
            assert!(!seen[m], "duplicate morton child");
            seen[m] = true;
            assert_eq!(st.morton_to_sfc(curve, dim, m), r, "inverse mismatch");
        }
    }

    #[test]
    fn oracle_is_bijective_all_reachable_states() {
        for curve in [Curve::Morton, Curve::Hilbert] {
            for dim in [2usize, 3, 4] {
                // BFS over reachable states from the root.
                let mut states = vec![SfcState::ROOT];
                let mut i = 0;
                while i < states.len() && states.len() < 512 {
                    let st = states[i];
                    check_bijection(curve, dim, st);
                    for r in 0..(1 << dim) {
                        let c = st.child(curve, dim, r);
                        if !states.contains(&c) {
                            states.push(c);
                        }
                    }
                    i += 1;
                }
                assert!(i == states.len(), "state space did not close");
            }
        }
    }

    /// Enumerate the full curve at `depth` and return cell anchors in curve
    /// order, on the lattice `[0, 2^depth)^DIM`.
    fn enumerate_curve(curve: Curve, dim: usize, depth: u32) -> Vec<Vec<u32>> {
        fn rec(
            curve: Curve,
            dim: usize,
            st: SfcState,
            anchor: &mut Vec<u32>,
            level: u32,
            depth: u32,
            out: &mut Vec<Vec<u32>>,
        ) {
            if level == depth {
                out.push(anchor.clone());
                return;
            }
            let half = 1u32 << (depth - level - 1);
            for r in 0..(1usize << dim) {
                let m = st.sfc_to_morton(curve, dim, r);
                for (k, a) in anchor.iter_mut().enumerate().take(dim) {
                    if (m >> k) & 1 == 1 {
                        *a += half;
                    }
                }
                rec(
                    curve,
                    dim,
                    st.child(curve, dim, r),
                    anchor,
                    level + 1,
                    depth,
                    out,
                );
                for (k, a) in anchor.iter_mut().enumerate().take(dim) {
                    if (m >> k) & 1 == 1 {
                        *a -= half;
                    }
                }
            }
        }
        let mut out = Vec::new();
        rec(
            curve,
            dim,
            SfcState::ROOT,
            &mut vec![0; dim],
            0,
            depth,
            &mut out,
        );
        out
    }

    #[test]
    fn hilbert_curve_is_face_continuous() {
        // The defining property of the Hilbert curve: consecutive cells share
        // a (d-1)-face, i.e. their anchors differ by exactly 1 in exactly one
        // coordinate. Morton does NOT have this property.
        for dim in [2usize, 3] {
            for depth in 1..=3u32 {
                let cells = enumerate_curve(Curve::Hilbert, dim, depth);
                assert_eq!(cells.len(), 1usize << (dim as u32 * depth));
                // All cells visited exactly once.
                let mut sorted = cells.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), cells.len());
                for w in cells.windows(2) {
                    let dist: u32 = (0..dim).map(|k| w[0][k].abs_diff(w[1][k])).sum();
                    assert_eq!(dist, 1, "hilbert jump at {:?} -> {:?}", w[0], w[1]);
                }
            }
        }
    }

    #[test]
    fn morton_curve_matches_bit_interleave() {
        let cells = enumerate_curve(Curve::Morton, 2, 2);
        // Z-order on a 4x4 grid: (0,0),(1,0),(0,1),(1,1),(2,0),...
        assert_eq!(cells[0], vec![0, 0]);
        assert_eq!(cells[1], vec![1, 0]);
        assert_eq!(cells[2], vec![0, 1]);
        assert_eq!(cells[3], vec![1, 1]);
        assert_eq!(cells[4], vec![2, 0]);
        assert_eq!(cells[15], vec![3, 3]);
    }
}
