//! TreeSort: comparison-free MSD bucket sort of octants in SFC order.
//!
//! Instead of comparison-based merge/quick sort, TreeSort performs an MSD
//! radix sort whose `2^DIM` buckets are permuted at every level according to
//! the SFC oracle (Fernando et al. \[23\], Ishii et al. \[30\]). Each pass
//! streams the data once, which is what gives the method its memory-locality
//! advantage. Ancestors sort *before* their descendants, which is the
//! convention required by duplicate/overlap removal in Algorithm 3.

use crate::octant::Octant;
use crate::oracle::{Curve, SfcState};
use std::cmp::Ordering;

/// Below this bucket size the recursion falls back to a comparison sort;
/// the radix passes no longer pay off.
const SMALL_SORT_CUTOFF: usize = 16;

/// Compares two octants in SFC order (ancestors first).
///
/// Walks the two key paths from the root, tracking the curve state, and
/// compares the first differing child by its SFC rank. If one key is a
/// prefix (ancestor) of the other, the ancestor orders first.
pub fn sfc_cmp<const DIM: usize>(curve: Curve, a: &Octant<DIM>, b: &Octant<DIM>) -> Ordering {
    let mut st = SfcState::ROOT;
    let max_l = a.level.max(b.level);
    for l in 1..=max_l {
        if l > a.level {
            return Ordering::Less; // a is an ancestor of b
        }
        if l > b.level {
            return Ordering::Greater; // b is an ancestor of a
        }
        let ca = a.child_bits_at(l);
        let cb = b.child_bits_at(l);
        if ca != cb {
            let ra = st.morton_to_sfc(curve, DIM, ca);
            let rb = st.morton_to_sfc(curve, DIM, cb);
            return ra.cmp(&rb);
        }
        let r = st.morton_to_sfc(curve, DIM, ca);
        st = st.child(curve, DIM, r);
    }
    Ordering::Equal
}

/// Sorts octants in SFC order via TreeSort.
pub fn treesort<const DIM: usize>(items: &mut [Octant<DIM>], curve: Curve) {
    treesort_by_key(items, curve, |o| *o);
}

/// Sorts arbitrary items by an octant key in SFC order via TreeSort.
///
/// MSD bucket sort: at tree level `l`, every item in the current range is a
/// descendant (or equal) of the current subtree. Items equal to the subtree
/// go first; the rest are bucketed by SFC child rank, then each bucket is
/// recursed with the child's curve state.
pub fn treesort_by_key<T, const DIM: usize, F>(items: &mut [T], curve: Curve, key: F)
where
    T: Clone,
    F: Fn(&T) -> Octant<DIM> + Copy,
{
    if items.is_empty() {
        return;
    }
    let mut scratch: Vec<T> = items.to_vec();
    sort_rec(items, &mut scratch, curve, SfcState::ROOT, 0, key);
}

fn sort_rec<T, const DIM: usize, F>(
    items: &mut [T],
    scratch: &mut [T],
    curve: Curve,
    st: SfcState,
    level: u8,
    key: F,
) where
    T: Clone,
    F: Fn(&T) -> Octant<DIM> + Copy,
{
    let nch = 1usize << DIM;
    if items.len() <= 1 {
        return;
    }
    if items.len() <= SMALL_SORT_CUTOFF {
        items.sort_by(|a, b| sfc_cmp(curve, &key(a), &key(b)));
        return;
    }
    debug_assert_eq!(items.len(), scratch.len());
    let child_level = level + 1;

    // Bucket 0 holds octants exactly at this subtree's level (the subtree
    // itself, given sortedness preconditions); buckets 1..=2^D the children
    // by SFC rank.
    let mut counts = [0usize; 1 + (1 << 8)]; // oversized stack array is fine for DIM<=4
    let counts = &mut counts[..1 + nch];
    for it in items.iter() {
        let o = key(it);
        if o.level < child_level {
            counts[0] += 1;
        } else {
            let r = st.morton_to_sfc(curve, DIM, o.child_bits_at(child_level));
            counts[1 + r] += 1;
        }
    }
    let mut offsets = [0usize; 2 + (1 << 8)];
    let offsets_slice = &mut offsets[..counts.len() + 1];
    for i in 0..counts.len() {
        offsets_slice[i + 1] = offsets_slice[i] + counts[i];
    }
    let mut cursor = [0usize; 1 + (1 << 8)];
    cursor[..counts.len()].copy_from_slice(&offsets_slice[..counts.len()]);
    for it in items.iter() {
        let o = key(it);
        let b = if o.level < child_level {
            0
        } else {
            1 + st.morton_to_sfc(curve, DIM, o.child_bits_at(child_level))
        };
        scratch[cursor[b]] = it.clone();
        cursor[b] += 1;
    }
    items.clone_from_slice(scratch);

    for r in 0..nch {
        let lo = offsets_slice[1 + r];
        let hi = offsets_slice[2 + r];
        if hi - lo > 1 {
            let child_st = st.child(curve, DIM, r);
            let (it, sc) = (&mut items[lo..hi], &mut scratch[lo..hi]);
            sort_rec(it, sc, curve, child_st, child_level, key);
        }
    }
}

/// Removes exact duplicates from an SFC-sorted slice (in place; returns the
/// deduplicated prefix length when used through `Vec::dedup`-like callers).
pub fn dedup_sorted<const DIM: usize>(octs: &mut Vec<Octant<DIM>>) {
    octs.dedup();
}

/// Removes ancestor/descendant overlaps from an SFC-sorted, deduplicated
/// list, *keeping the finer octants* — the resolution rule of Algorithm 3
/// ("finer octants are preferred to coarser overlapping octants").
pub fn linearize_keep_finer<const DIM: usize>(octs: &mut Vec<Octant<DIM>>) {
    let mut out: Vec<Octant<DIM>> = Vec::with_capacity(octs.len());
    for o in octs.iter() {
        while let Some(last) = out.last() {
            if last.is_ancestor_of(o) {
                out.pop();
            } else {
                break;
            }
        }
        out.push(*o);
    }
    *octs = out;
}

/// Checks whether a slice is SFC-sorted (strictly, no duplicates).
pub fn is_sorted_unique<const DIM: usize>(octs: &[Octant<DIM>], curve: Curve) -> bool {
    octs.windows(2)
        .all(|w| sfc_cmp(curve, &w[0], &w[1]) == Ordering::Less)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_octants<const DIM: usize>(n: usize, max_level: u8, seed: u64) -> Vec<Octant<DIM>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let level = rng.gen_range(0..=max_level);
                let mut o = Octant::<DIM>::ROOT;
                for _ in 0..level {
                    o = o.child(rng.gen_range(0..(1 << DIM)));
                }
                o
            })
            .collect()
    }

    #[test]
    fn treesort_matches_comparison_sort() {
        for curve in [Curve::Morton, Curve::Hilbert] {
            for seed in 0..5 {
                let mut a = random_octants::<3>(800, 6, seed);
                let mut b = a.clone();
                treesort(&mut a, curve);
                b.sort_by(|x, y| sfc_cmp(curve, x, y));
                assert_eq!(a, b, "curve {curve:?} seed {seed}");
                assert!(a
                    .windows(2)
                    .all(|w| sfc_cmp(curve, &w[0], &w[1]) != Ordering::Greater));
            }
        }
    }

    #[test]
    fn treesort_2d() {
        for curve in [Curve::Morton, Curve::Hilbert] {
            let mut a = random_octants::<2>(500, 8, 3);
            let mut b = a.clone();
            treesort(&mut a, curve);
            b.sort_by(|x, y| sfc_cmp(curve, x, y));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ancestors_sort_first() {
        let parent = Octant::<3>::ROOT.child(3);
        for c in 0..8 {
            let child = parent.child(c);
            assert_eq!(sfc_cmp(Curve::Morton, &parent, &child), Ordering::Less);
            assert_eq!(sfc_cmp(Curve::Hilbert, &parent, &child), Ordering::Less);
        }
    }

    #[test]
    fn sfc_cmp_total_order_properties() {
        let octs = random_octants::<3>(120, 5, 11);
        for curve in [Curve::Morton, Curve::Hilbert] {
            for a in &octs {
                assert_eq!(sfc_cmp(curve, a, a), Ordering::Equal);
                for b in &octs {
                    let ab = sfc_cmp(curve, a, b);
                    let ba = sfc_cmp(curve, b, a);
                    assert_eq!(ab, ba.reverse());
                }
            }
        }
    }

    #[test]
    fn linearize_keeps_finer() {
        let root = Octant::<2>::ROOT;
        let c0 = root.child(0);
        let c00 = c0.child(0);
        let c3 = root.child(3);
        let mut v = vec![root, c0, c00, c3];
        // already in Morton SFC order: root < c0 < c00 < c3
        assert!(is_sorted_unique(&v, Curve::Morton));
        linearize_keep_finer(&mut v);
        assert_eq!(v, vec![c00, c3]);
    }

    #[test]
    fn siblings_cover_parent_in_order() {
        // Sorting all 4 children of each child of the root gives the full
        // level-2 curve; consecutive Hilbert cells must be face-adjacent.
        let mut leaves: Vec<Octant<2>> = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                leaves.push(Octant::<2>::ROOT.child(a).child(b));
            }
        }
        treesort(&mut leaves, Curve::Hilbert);
        for w in leaves.windows(2) {
            let d =
                w[0].anchor[0].abs_diff(w[1].anchor[0]) + w[0].anchor[1].abs_diff(w[1].anchor[1]);
            assert_eq!(d, w[0].side(), "hilbert neighbors must share a face");
        }
    }
}
