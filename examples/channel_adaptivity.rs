//! Anisotropic domains without stretched elements: builds the paper's
//! 16×1×1 channel as an incomplete octree (unit-aspect elements all the
//! way), runs the distributed pipeline on a few simulated ranks, and prints
//! partition/ghost statistics — a miniature of §4.5.1.
//!
//! ```sh
//! cargo run --release --example channel_adaptivity
//! ```

use carve::comm::run_spmd;
use carve::core::{DistMesh, Mesh};
use carve::geom::RetainBox;
use carve::sfc::{Curve, Octant};

fn main() {
    let domain = RetainBox::<3>::channel([1.0, 1.0 / 16.0, 1.0 / 16.0]);
    // Sequential mesh with boundary-layer refinement at the walls.
    let mesh = Mesh::build(&domain, Curve::Hilbert, 5, 7, 1);
    println!(
        "channel 16x1x1: {} elements, {} dofs (complete octree at the finest \
         level would need {} elements for the same wall resolution)",
        mesh.num_elems(),
        mesh.num_dofs(),
        1u64 << (3 * 7)
    );
    let levels: Vec<u8> = mesh.elems.iter().map(|e| e.level).collect();
    let min_l = levels.iter().min().unwrap();
    let max_l = levels.iter().max().unwrap();
    println!("levels {min_l}..{max_l}; every element has aspect ratio 1.");

    // Distributed build on 4 simulated ranks (threads): Algorithm 3 + ghost
    // exchange, then one distributed MATVEC with a Poisson kernel. Phase
    // timings come from the observability layer (each rank thread reads its
    // own snapshot).
    let results = run_spmd(4, |comm| {
        let _obs = carve::obs::force_enabled();
        let domain = RetainBox::<3>::channel([1.0, 1.0 / 16.0, 1.0 / 16.0]);
        let dm = DistMesh::<3>::build(comm, &domain, Curve::Hilbert, 5, 6, 1);
        let mut cache = carve::fem::ElementCache::<3>::new(1);
        let x = vec![1.0; dm.nodes.len()];
        let mut y = vec![0.0; dm.nodes.len()];
        let before = carve::obs::thread_snapshot();
        dm.matvec(
            comm,
            &x,
            &mut y,
            &mut |e: &Octant<3>, u: &[f64], v: &mut [f64]| {
                cache.apply_stiffness_tensor(e.bounds_unit().1 * 16.0, u, v);
            },
        );
        let d = carve::obs::thread_snapshot().diff(&before);
        let secs = |name: &str| d.phases.get(name).map_or(0.0, |p| p.secs);
        let matvec_s = secs("matvec");
        let comm_s = secs("ghost_read") + secs("ghost_accumulate");
        let stats = dm.ghost_stats();
        // Laplacian of a constant is zero: a built-in correctness check.
        let max_owned = (0..dm.nodes.len())
            .filter(|&i| dm.owner[i] as usize == comm.rank())
            .map(|i| y[i].abs())
            .fold(0.0, f64::max);
        (stats, matvec_s, comm_s, max_owned)
    });
    println!("\nrank  owned elems  owned nodes  ghosts  eta    matvec(s)  comm(s)");
    for (r, (s, t, c, residual)) in results.iter().enumerate() {
        println!(
            "{r:>4}  {:>11}  {:>11}  {:>6}  {:.3}  {t:.5}    {c:.5}",
            s.owned_elems,
            s.owned_nodes,
            s.ghost_nodes,
            s.eta()
        );
        assert!(*residual < 1e-10, "K·1 must vanish, got {residual}");
    }
    println!("\nK·1 = 0 verified on every rank (distributed hanging-node handling).");
}
