//! The paper's §5 application: airflow and viral-load transport in a
//! classroom with furniture, seated students (with or without monitors),
//! and a standing instructor. One student is infected; their exhaled viral
//! load is advected by the ventilation flow (ceiling inlets/outlets) and
//! the resulting concentration field is written to VTK.
//!
//! ```sh
//! CARVE_MONITORS=1 cargo run --release --example classroom
//! ```

use carve::core::{Mesh, NodeFlags};
use carve::geom::classroom::{ClassroomScene, ROOM};
use carve::io::write_vtk_mesh;
use carve::ns::{FlowSolver, NodeBc, TransportSolver, VmsParams};
use carve::sfc::Curve;

fn main() {
    let with_monitors = std::env::var("CARVE_MONITORS").as_deref() == Ok("1");
    let scene = ClassroomScene::new(with_monitors, (1, 1));
    println!(
        "classroom with{} monitors: {} carved solids, infected student at {:?}",
        if with_monitors { "" } else { "out" },
        scene.solid_count(),
        scene.source_center
    );
    let (base, body) = if std::env::var("CARVE_MESH").as_deref() == Ok("large") {
        (6u8, 8u8)
    } else {
        (5, 7)
    };
    let mesh = Mesh::build(&scene.domain, Curve::Hilbert, base, body, 1);
    println!(
        "mesh: {} elements, {} nodes",
        mesh.num_elems(),
        mesh.num_dofs()
    );

    // --- Flow: ceiling inlets blow down, outlets hold pressure ------------
    let scale = scene.scale;
    let scene_ref = &scene;
    let bc = move |x: &[f64; 3], fl: NodeFlags| -> NodeBc<3> {
        let phys = [x[0] * scale, x[1] * scale, x[2] * scale];
        if (phys[2] - ROOM[2]).abs() < 1e-6 {
            if scene_ref.is_inlet(&phys) {
                return NodeBc::Velocity([0.0, 0.0, -1.0]);
            }
            if scene_ref.is_outlet(&phys) {
                return NodeBc::Pressure(0.0);
            }
            return NodeBc::Velocity([0.0; 3]);
        }
        if fl.is_any_boundary() {
            return NodeBc::Velocity([0.0; 3]);
        }
        NodeBc::Free
    };
    // Re = 1e5 based on inlet velocity and room height (paper's value).
    let params = VmsParams::new(1e-5, 0.25);
    let mut flow = FlowSolver::new(&mesh, params, scale, &bc);
    flow.max_picard = 3;
    let zero = |_: &[f64; 3]| [0.0; 3];
    let steps: usize = std::env::var("CARVE_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    for s in 0..steps {
        let rep = flow.step(&zero);
        println!("flow step {s}: |du| = {:.3e}", rep.delta_u);
    }

    // --- Transport: cough source at the infected student's mouth ----------
    let vel = flow.velocity_field();
    let tbc = |x: &[f64; 3], _fl: NodeFlags| {
        let phys_z = x[2] * scale;
        if (phys_z - ROOM[2]).abs() < 1e-6
            && scene_ref.is_inlet(&[x[0] * scale, x[1] * scale, phys_z])
        {
            Some(0.0) // clean air in
        } else {
            None
        }
    };
    let mut transport = TransportSolver::new(&mesh, &vel, 1e-4, 0.2, scale, &tbc);
    let src_center = scene.source_center;
    let src_r = scene.source_radius * scale;
    let source = move |x: &[f64; 3]| {
        let d2 = (x[0] - src_center[0] * scale).powi(2)
            + (x[1] - src_center[1] * scale).powi(2)
            + (x[2] - src_center[2] * scale).powi(2);
        if d2 < src_r * src_r {
            1.0 // quanta emission
        } else {
            0.0
        }
    };
    for s in 0..2 * steps {
        let r = transport.step(&source);
        if s % 4 == 0 {
            println!(
                "transport step {s}: total viral load {:.4e} (lin iters {})",
                transport.total_mass(),
                r.iterations
            );
        }
    }

    // --- Output ------------------------------------------------------------
    let points: Vec<[f64; 3]> = (0..mesh.num_dofs())
        .map(|i| {
            let u = mesh.nodes.unit_coords(i);
            [u[0] * scale, u[1] * scale, u[2] * scale]
        })
        .collect();
    let mut cells = Vec::new();
    for e in &mesh.elems {
        let order = [0usize, 1, 3, 2, 4, 5, 7, 6];
        let mut conn = Vec::with_capacity(8);
        let mut ok = true;
        for &lin in &order {
            let idx = carve::core::nodes::lattice_index::<3>(lin, 1);
            let c = carve::core::nodes::elem_node_coord(e, 1, &idx);
            match mesh.nodes.find(&c) {
                Some(i) => conn.push(i as u32),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            cells.push(conn);
        }
    }
    let vmag: Vec<f64> = (0..mesh.num_dofs())
        .map(|i| {
            let v = flow.velocity(i);
            (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
        })
        .collect();
    let name = if with_monitors {
        "results/classroom_monitors.vtk"
    } else {
        "results/classroom.vtk"
    };
    write_vtk_mesh(
        std::path::Path::new(name),
        &points,
        &cells,
        &[("vmag", &vmag), ("viral_load", &transport.c)],
    )
    .unwrap();
    println!("fields written to {name} (open in ParaView; compare with Fig. 16)");
}
