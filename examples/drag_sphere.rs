//! Flow past a sphere (the paper's §5 validation case, Fig. 13/14 setup):
//! a sphere of diameter d = 1 carved from a `(10d, 6d, 6d)` channel,
//! VMS-stabilized Navier–Stokes marched toward steady state, drag
//! coefficient from the traction on the voxelated sphere surface, and a
//! VTK dump of the wake for visualization.
//!
//! ```sh
//! CARVE_RE=100 cargo run --release --example drag_sphere
//! ```

use carve::core::{Mesh, NodeFlags};
use carve::geom::{CarvedSolids, CompositeDomain, RetainBox, Sphere};
use carve::io::write_vtk_mesh;
use carve::ns::{drag_on_surrogate, FlowSolver, NodeBc, VmsParams};
use carve::sfc::Curve;

fn main() {
    let re: f64 = std::env::var("CARVE_RE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100.0);
    // Domain (10d, 6d, 6d), sphere at (3d, 3d, 3d): unit cube scaled by 10.
    let scale = 10.0;
    let center = [0.3, 0.3, 0.3];
    let sphere = Sphere::new(center, 0.05);
    let domain = CompositeDomain {
        retain: RetainBox::new([0.0; 3], [1.0, 0.6, 0.6]),
        carved: CarvedSolids::new(vec![Box::new(sphere)]),
    };
    let (base, boundary) = if std::env::var("CARVE_MESH").as_deref() == Ok("large") {
        (5u8, 7u8)
    } else {
        (4, 6)
    };
    let mesh = Mesh::build(&domain, Curve::Hilbert, base, boundary, 1);
    println!(
        "Re = {re}: mesh {} elements, {} nodes",
        mesh.num_elems(),
        mesh.num_dofs()
    );
    let u_in = 1.0;
    let nu = u_in * 1.0 / re; // d = 1 physical
    let bc = move |x: &[f64; 3], fl: NodeFlags| -> NodeBc<3> {
        let eps = 1e-9;
        if x[0] >= 1.0 - eps {
            return NodeBc::Pressure(0.0); // outlet
        }
        if fl.is_carved_boundary() {
            let d = ((x[0] - center[0]).powi(2)
                + (x[1] - center[1]).powi(2)
                + (x[2] - center[2]).powi(2))
            .sqrt();
            if d < 0.1 {
                return NodeBc::Velocity([0.0; 3]); // no-slip sphere
            }
            return NodeBc::Velocity([u_in, 0.0, 0.0]); // free-stream walls
        }
        NodeBc::Free
    };
    let params = VmsParams::new(nu, 0.25);
    let mut solver = FlowSolver::new(&mesh, params, scale, &bc);
    solver.max_picard = 4;
    let zero = |_: &[f64; 3]| [0.0; 3];
    let steps: usize = std::env::var("CARVE_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    for s in 0..steps {
        let rep = solver.step(&zero);
        println!(
            "step {s}: picard {}, lin iters {}, |du| {:.3e}",
            rep.picard_iters, rep.linear.iterations, rep.delta_u
        );
        if rep.delta_u < 1e-4 {
            break;
        }
    }
    let on_sphere = move |x: &[f64; 3]| {
        ((x[0] - center[0]).powi(2) + (x[1] - center[1]).powi(2) + (x[2] - center[2]).powi(2))
            .sqrt()
            < 0.1
    };
    let f = drag_on_surrogate(&solver, &on_sphere);
    let area = std::f64::consts::PI / 4.0;
    let cd = f[0] / (0.5 * u_in * u_in * area);
    println!("force = {f:?}");
    println!("Cd = {cd:.3}  (experimental sphere drag: ~1.1 at Re=100, ~0.47 at Re=1000)");
    println!("divergence L2 = {:.3e}", solver.divergence_l2());

    // VTK dump (velocity magnitude + pressure at nodes, hex cells).
    let points: Vec<[f64; 3]> = (0..mesh.num_dofs())
        .map(|i| {
            let u = mesh.nodes.unit_coords(i);
            [u[0] * scale, u[1] * scale, u[2] * scale]
        })
        .collect();
    // Hex connectivity: VTK vertex order (x fastest, specific corner walk).
    let mut cells = Vec::with_capacity(mesh.num_elems());
    for e in &mesh.elems {
        let order = [0usize, 1, 3, 2, 4, 5, 7, 6]; // lattice -> VTK hex
        let mut conn = Vec::with_capacity(8);
        let mut ok = true;
        for &lin in &order {
            let idx = carve::core::nodes::lattice_index::<3>(lin, 1);
            let c = carve::core::nodes::elem_node_coord(e, 1, &idx);
            match mesh.nodes.find(&c) {
                Some(i) => conn.push(i as u32),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            cells.push(conn);
        }
    }
    let vmag: Vec<f64> = (0..mesh.num_dofs())
        .map(|i| {
            let v = solver.velocity(i);
            (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
        })
        .collect();
    let pressure: Vec<f64> = (0..mesh.num_dofs()).map(|i| solver.pressure(i)).collect();
    let path = std::path::Path::new("results/drag_sphere.vtk");
    write_vtk_mesh(path, &points, &cells, &[("vmag", &vmag), ("p", &pressure)]).unwrap();
    println!("wake field written to {path:?} (open in ParaView)");
}
