//! Quickstart: carve a disk-shaped domain out of the unit square, build a
//! 2:1-balanced incomplete quadtree, solve a Poisson problem with the
//! Shifted Boundary Method, and check the error against the exact solution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use carve::core::Mesh;
use carve::fem::{l2_linf_error, solve_poisson, BcMode, PoissonProblem, SbmParams};
use carve::geom::{RetainSolid, Solid, Sphere};
use carve::sfc::Curve;

fn main() {
    // 1. Geometry: the PDE domain is a disk of radius 0.5 — everything
    //    outside it is carved away. Any `Subdomain` implementation works;
    //    all the octree code ever asks is In/Out/Intercepted.
    let disk = Sphere::<2>::new([0.5, 0.5], 0.5);
    let domain = RetainSolid::new(disk);

    // 2. Mesh: uniform level-6 refinement; carved subtrees are pruned
    //    during construction, the tree is 2:1 balanced, and hanging nodes
    //    are resolved by cancellation (§3.2–3.4 of the paper).
    let mesh = Mesh::build(&domain, Curve::Hilbert, 6, 6, 1);
    println!(
        "mesh: {} elements, {} dofs, {} intercepted boundary elements",
        mesh.num_elems(),
        mesh.num_dofs(),
        mesh.intercepted_elems().len()
    );

    // 3. Solve −Δu = 1, u = 0 on the circle. The voxelated boundary is
    //    corrected to the true circle by the Shifted Boundary Method.
    let one = |_: &[f64; 2]| 1.0;
    let zero = |_: &[f64; 2]| 0.0;
    let closest = move |x: &[f64; 2]| disk.closest_boundary_point(x);
    let prob = PoissonProblem {
        scale: 1.0,
        f: &one,
        dirichlet: &zero,
        closest_boundary: Some(&closest),
        strong_cube_bc: false,
        bc: BcMode::Sbm(SbmParams::default()),
    };
    let sol = solve_poisson(&mesh, &domain, &prob);
    println!(
        "solve: {} BiCGStab iterations, residual {:.2e}",
        sol.krylov.iterations, sol.krylov.residual
    );

    // 4. Compare with the exact solution u = (R² − r²)/4.
    let exact = |x: &[f64; 2]| {
        let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
        0.25 * (0.25 - r2)
    };
    let norms = l2_linf_error(&mesh, &domain, &sol.u, &exact, 1.0);
    println!(
        "error: L2 = {:.3e}, Linf = {:.3e} (h = {:.4})",
        norms.l2, norms.linf, norms.h_min
    );
    assert!(norms.l2 < 1e-3, "SBM at level 6 should be well under 1e-3");
    println!("ok: second-order-accurate solution on a carved domain.");
}
