//! Voxelize any watertight STL into a carved octree mesh: read (or
//! procedurally generate) a body, carve it from the unit cube, report mesh
//! statistics and the signed-distance quality of the voxel boundary
//! (the Fig. 5 pipeline as a user-facing tool), and write both the carved
//! mesh and the voxelized body surface to VTK.
//!
//! ```sh
//! cargo run --release --example stl_voxelize -- path/to/body.stl
//! cargo run --release --example stl_voxelize            # procedural dragon
//! ```

use carve::core::Mesh;
use carve::geom::domain::Solid;
use carve::geom::dragon::{dragon_mesh, DragonParams};
use carve::geom::{CarvedSolids, TriMeshSolid};
use carve::io::write_vtk_mesh;
use carve::sfc::Curve;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tri = if args.len() > 1 {
        carve::geom::stl::read_stl(std::path::Path::new(&args[1])).expect("readable STL")
    } else {
        dragon_mesh(&DragonParams::default())
    };
    println!(
        "body: {} triangles, area {:.4}, volume {:.5}, watertight: {}",
        tri.tris.len(),
        tri.area(),
        tri.signed_volume(),
        tri.is_watertight()
    );
    assert!(tri.is_watertight(), "carving needs a watertight body");
    let solid = TriMeshSolid::new(tri.clone());
    let level: u8 = std::env::var("CARVE_LEVEL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let domain = CarvedSolids::new(vec![Box::new(TriMeshSolid::new(tri))]);
    let t0 = std::time::Instant::now();
    let mesh = Mesh::build(&domain, Curve::Hilbert, 4, level, 1);
    println!(
        "carved mesh: {} elements, {} nodes, {} intercepted, built in {:.2}s",
        mesh.num_elems(),
        mesh.num_dofs(),
        mesh.intercepted_elems().len(),
        t0.elapsed().as_secs_f64()
    );

    // Voxel-boundary quality: max |signed distance| over boundary nodes.
    let mut max_d: f64 = 0.0;
    let mut nb = 0;
    for i in 0..mesh.num_dofs() {
        if mesh.nodes.flags[i].is_carved_boundary() {
            nb += 1;
            max_d = max_d.max(solid.signed_distance(&mesh.nodes.unit_coords(i)).abs());
        }
    }
    println!(
        "{nb} boundary nodes; max |signed distance| to the true surface: {max_d:.4e} \
         (element size at the surface: {:.4e})",
        1.0 / (1u64 << level) as f64
    );

    // VTK: carved volume mesh with the carved-boundary flag as a field.
    let points: Vec<[f64; 3]> = (0..mesh.num_dofs())
        .map(|i| {
            let u = mesh.nodes.unit_coords(i);
            [u[0], u[1], u[2]]
        })
        .collect();
    let mut cells = Vec::new();
    for e in &mesh.elems {
        let order = [0usize, 1, 3, 2, 4, 5, 7, 6];
        let mut conn = Vec::with_capacity(8);
        let mut ok = true;
        for &lin in &order {
            let idx = carve::core::nodes::lattice_index::<3>(lin, 1);
            let c = carve::core::nodes::elem_node_coord(e, 1, &idx);
            match mesh.nodes.find(&c) {
                Some(i) => conn.push(i as u32),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            cells.push(conn);
        }
    }
    let boundary_flag: Vec<f64> = (0..mesh.num_dofs())
        .map(|i| {
            if mesh.nodes.flags[i].is_carved_boundary() {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let out = std::path::Path::new("results/voxelized.vtk");
    write_vtk_mesh(out, &points, &cells, &[("carved_boundary", &boundary_flag)]).unwrap();
    println!("carved mesh written to {out:?}");
}
