#!/usr/bin/env bash
# Perf-regression gate: run the smoke benchmark, write BENCH_PR<k>.json at
# the repo root, and compare per-phase timings against the newest prior
# BENCH_*.json. Fails (exit 1) if any phase's mean seconds regressed beyond
# the tolerance; the first ever run just records the baseline.
#
# Knobs (env):
#   BENCH_PR              force the PR number for the output file
#   BENCH_GATE_TOLERANCE  fractional slowdown allowed per phase (default 0.25)
#   BENCH_GATE_MIN_SECS   ignore phases faster than this (default 0.005)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p carve-bench --bin bench_smoke

if [[ -n "${BENCH_PR:-}" ]]; then
  k="$BENCH_PR"
else
  newest=$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -n 1 || true)
  if [[ -n "$newest" ]]; then
    k=$(( $(basename "$newest" .json | sed 's/^BENCH_PR//') + 1 ))
  else
    k=2 # PR numbering starts where the observability layer landed
  fi
fi
out="BENCH_PR${k}.json"

# Newest prior report = highest PR number among committed BENCH_PR*.json,
# excluding this run's own output (a rerun must not diff against itself).
prev=$(ls BENCH_PR*.json 2>/dev/null | grep -Fxv "$out" | sort -V | tail -n 1 || true)

./target/release/bench_smoke "$out"

if [[ -n "$prev" && "$prev" != "$out" ]]; then
  ./target/release/bench_smoke --compare "$prev" "$out"
  echo "bench_gate: $out vs $prev — no regression"
else
  echo "bench_gate: recorded baseline $out (no prior report to compare)"
fi
