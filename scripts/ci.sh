#!/usr/bin/env bash
# Tier-1 gate: formatting, release build + tests, a debug-profile test pass
# (catches debug_assert!-only failures), clippy and rustdoc with warnings
# denied. Run before every merge. Works offline (all deps are vendored or std).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check

cargo build --release --workspace
cargo test -q --release --workspace
cargo test -q --workspace

# carve-comm additionally denies unwrap/expect crate-wide (lib.rs).
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "ci: fmt + build + tests (release & debug) + clippy + doc all green"
