#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, clippy with warnings denied.
# Run before every merge. Works offline (all deps are vendored or std).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
# carve-comm additionally denies unwrap/expect crate-wide (lib.rs).
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: build + tests + clippy all green"
