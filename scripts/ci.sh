#!/usr/bin/env bash
# Tier-1 gate, organized as named stages with per-stage timing and a summary
# table. Run before every merge. Works offline (all deps are vendored or std).
#
#   scripts/ci.sh                      # run every stage in order
#   CARVE_CI_STAGE=chaos scripts/ci.sh # run one stage by name
#
# Stages:
#   fmt                cargo fmt --check
#   build              release build of the whole workspace
#   test-par1          release tests pinned to 1 traversal thread
#   test-par4          release tests forked to 4 traversal threads
#   test-debug         debug-profile tests (catches debug_assert!-only bugs)
#   chaos              release tests under delay-only ambient chaos
#   chaos-lossy        release tests under drop/corrupt chaos + lane retry
#   adapt-determinism  adapt_trace bitwise-diffed over threads {1,4} x
#                      {clean, lossy chaos} (DESIGN.md §7)
#   leaf-kernel-determinism
#                      matvec_digest byte-compared over batch widths {1,8}
#                      x threads {1,4}: the batched SoA leaf path must be
#                      bitwise identical to the scalar path (DESIGN.md §6h)
#   clippy             clippy with warnings denied
#   doc                rustdoc with warnings denied
#   bench-gate         scripts/bench_gate.sh perf regression gate
#   serve-gate         bench_serve request replay: latency floors (cache
#                      hit ≥5× faster than miss, block-CG ≤1/3 the
#                      rounds) plus the latency-stripped report
#                      byte-compared over threads {1,4} x {clean, lossy
#                      chaos} (DESIGN.md §6i)
#   scaling-gate       repro_scaling --check vs the committed scaling
#                      artifact (per-rank replay structure at 256..28672
#                      ranks, digests, reference-model efficiencies)
set -euo pipefail
cd "$(dirname "$0")/.."

STAGES=(fmt build test-par1 test-par4 test-debug chaos chaos-lossy
        adapt-determinism leaf-kernel-determinism clippy doc bench-gate
        serve-gate scaling-gate)

run_stage() {
  case "$1" in
    fmt)
      cargo fmt --all --check
      ;;
    build)
      cargo build --release --workspace
      ;;
    # Traversal results must be independent of the intra-rank thread budget
    # (bitwise, see DESIGN.md §6d) — run the suite pinned and forked.
    test-par1)
      CARVE_PAR_THREADS=1 cargo test -q --release --workspace
      ;;
    test-par4)
      CARVE_PAR_THREADS=4 cargo test -q --release --workspace
      ;;
    test-debug)
      cargo test -q --workspace
      ;;
    # Ambient chaos: delay-only fault injection on every simulated-MPI run
    # (CARVE_CHAOS seeds env_chaos_plan). Message counts and results must be
    # schedule-independent, so the whole suite must stay green under it.
    chaos)
      CARVE_CHAOS=29 cargo test -q --release --workspace
      ;;
    # Lossy chaos: same seed, but the exchange lanes additionally drop and
    # corrupt frames; the retry/backoff protocol must recover every loss so
    # the suite stays green and bitwise identical to the fault-free run. The
    # short retry base keeps recovery snappy under test load.
    chaos-lossy)
      CARVE_CHAOS=29:lossy CARVE_RETRY_BASE=0.01 cargo test -q --release --workspace
      ;;
    # The dynamic-AMR loop must produce one serialized carve-adapt-trace-v1
    # document — element counts, DOF counts, leaf/field hashes — no matter
    # the thread budget or chaos schedule. Diff the matrix bitwise.
    adapt-determinism)
      cargo build --release -q -p carve-bench --bin adapt_trace
      local tmp
      tmp=$(mktemp -d)
      trap 'rm -rf "$tmp"' RETURN
      for threads in 1 4; do
        CARVE_PAR_THREADS=$threads \
          ./target/release/adapt_trace "$tmp/t${threads}.json"
        CARVE_PAR_THREADS=$threads CARVE_CHAOS=29:lossy CARVE_RETRY_BASE=0.01 \
          ./target/release/adapt_trace "$tmp/t${threads}-lossy.json"
      done
      for f in t4 t1-lossy t4-lossy; do
        cmp "$tmp/t1.json" "$tmp/$f.json" \
          || { echo "ci: adapt trace t1 vs $f differs" >&2; return 1; }
      done
      echo "ci: adapt trace bitwise-identical over threads {1,4} x {clean,lossy}"
      ;;
    # The batched SoA leaf path (CARVE_BATCH_WIDTH, DESIGN.md §6h) must be
    # bitwise identical to the scalar path (width 1) at any thread budget:
    # digest the matvec output bits over the width x threads matrix and
    # byte-compare the documents.
    leaf-kernel-determinism)
      cargo build --release -q -p carve-bench --bin matvec_digest
      local tmp
      tmp=$(mktemp -d)
      trap 'rm -rf "$tmp"' RETURN
      for width in 1 8; do
        for threads in 1 4; do
          CARVE_BATCH_WIDTH=$width CARVE_PAR_THREADS=$threads \
            ./target/release/matvec_digest "$tmp/w${width}-t${threads}.txt"
        done
      done
      for f in w1-t4 w8-t1 w8-t4; do
        cmp "$tmp/w1-t1.txt" "$tmp/$f.txt" \
          || { echo "ci: matvec digest w1-t1 vs $f differs" >&2; return 1; }
      done
      echo "ci: matvec digest bitwise-identical over widths {1,8} x threads {1,4}"
      ;;
    # carve-comm additionally denies unwrap/expect crate-wide (lib.rs).
    clippy)
      cargo clippy --workspace --all-targets -- -D warnings
      ;;
    doc)
      RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
      ;;
    bench-gate)
      # A CI re-run must not mint a new report number: regenerate the
      # newest committed report and gate it against its predecessor.
      local pr="${BENCH_PR:-}"
      if [[ -z "$pr" ]]; then
        local newest
        newest=$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -n 1 || true)
        [[ -n "$newest" ]] && pr=$(basename "$newest" .json | sed 's/^BENCH_PR//')
      fi
      BENCH_PR="$pr" bash scripts/bench_gate.sh
      ;;
    # Serving engine gate (DESIGN.md §6i): one full replay enforcing the
    # hit-vs-miss latency floor and the block-CG round budget, then the
    # latency-stripped document byte-compared over threads {1,4} x
    # {clean, lossy chaos} — every request/cache/round count and the
    # solution/read digest must be a pure function of the trace.
    serve-gate)
      cargo build --release -q -p carve-bench --bin bench_serve
      local tmp
      tmp=$(mktemp -d)
      trap 'rm -rf "$tmp"' RETURN
      ./target/release/bench_serve "$tmp/full.json"
      for threads in 1 4; do
        CARVE_PAR_THREADS=$threads \
          ./target/release/bench_serve --check "$tmp/t${threads}.json"
        CARVE_PAR_THREADS=$threads CARVE_CHAOS=29:lossy CARVE_RETRY_BASE=0.01 \
          ./target/release/bench_serve --check "$tmp/t${threads}-lossy.json"
      done
      for f in t4 t1-lossy t4-lossy; do
        cmp "$tmp/t1.json" "$tmp/$f.json" \
          || { echo "ci: serve replay t1 vs $f differs" >&2; return 1; }
      done
      echo "ci: serve replay deterministic over threads {1,4} x {clean,lossy}"
      ;;
    # The committed replay-scaling artifact (newest SCALING_PR*.json) must
    # be regenerable from source, bit-for-bit in its per-rank structure:
    # any drift in partitioning, node ownership, ghost layout, neighbor
    # counts, or the pinned reference model fails the gate, as does an
    # efficiency dropping below the committed floor. Machine-independent —
    # the check never calibrates.
    scaling-gate)
      local newest
      newest=$(ls SCALING_PR*.json 2>/dev/null | sort -V | tail -n 1 || true)
      if [[ -z "$newest" ]]; then
        echo "ci: no SCALING_PR*.json artifact committed" >&2
        return 1
      fi
      cargo build --release -q -p carve-bench --bin repro_scaling
      ./target/release/repro_scaling --check "$newest"
      ;;
    *)
      echo "ci: unknown stage '$1' (known: ${STAGES[*]})" >&2
      return 2
      ;;
  esac
}

if [[ -n "${CARVE_CI_STAGE:-}" ]]; then
  selected=("$CARVE_CI_STAGE")
else
  selected=("${STAGES[@]}")
fi

summary=()
for stage in "${selected[@]}"; do
  echo "ci: ==> $stage"
  start=$SECONDS
  run_stage "$stage"
  summary+=("$(printf '%-18s %5ss  ok' "$stage" "$((SECONDS - start))")")
done

echo
echo "ci: summary"
printf '  %s\n' "${summary[@]}"
echo "ci: all stages green"
