#!/usr/bin/env bash
# Tier-1 gate: formatting, release build + tests, a debug-profile test pass
# (catches debug_assert!-only failures), clippy and rustdoc with warnings
# denied. Run before every merge. Works offline (all deps are vendored or std).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check

cargo build --release --workspace
# Traversal results must be independent of the intra-rank thread budget
# (bitwise, see DESIGN.md §6d) — run the suite pinned sequential and forked.
CARVE_PAR_THREADS=1 cargo test -q --release --workspace
CARVE_PAR_THREADS=4 cargo test -q --release --workspace
cargo test -q --workspace
# Ambient chaos: delay-only fault injection on every simulated-MPI run
# (CARVE_CHAOS seeds env_chaos_plan). Message counts and results must be
# schedule-independent, so the whole suite must stay green under it.
CARVE_CHAOS=29 cargo test -q --release --workspace
# Lossy chaos: same seed, but the exchange lanes additionally drop and
# corrupt frames; the retry/backoff protocol must recover every loss so the
# suite stays green and bitwise identical to the fault-free run. The short
# retry base keeps recovery snappy under test load.
CARVE_CHAOS=29:lossy CARVE_RETRY_BASE=0.01 cargo test -q --release --workspace

# carve-comm additionally denies unwrap/expect crate-wide (lib.rs).
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "ci: fmt + build + tests (release & debug) + clippy + doc all green"
