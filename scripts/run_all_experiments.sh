#!/usr/bin/env bash
# Regenerates every table/figure of the paper in one go. CSVs land in
# results/. Heavier settings: CARVE_MESH=large, CARVE_SOLVE_RE=100,1000.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p carve-bench

bins=(
  repro_fig5
  repro_table1
  repro_fig6
  repro_table2
  repro_scaling
  repro_fig11
  repro_fig12
  repro_table4
  repro_fig13
  repro_table5
  repro_table6
  ablation_curves
)
for b in "${bins[@]}"; do
  echo "==================== $b ===================="
  cargo run --release -p carve-bench --bin "$b"
  echo
done
echo "all experiment outputs written to results/"
