//! Umbrella crate re-exporting the whole `carve` workspace.
//!
//! `carve` is a Rust reproduction of *"Scalable adaptive PDE solvers in
//! arbitrary domains"* (SC '21): incomplete-octree mesh generation for
//! arbitrary carved geometries, traversal-based matrix-free FEM, the Shifted
//! Boundary Method, and a VMS-stabilized Navier-Stokes solver.
pub use carve_baseline as baseline;
pub use carve_comm as comm;
pub use carve_core as core;
pub use carve_fem as fem;
pub use carve_geom as geom;
pub use carve_io as io;
pub use carve_la as la;
pub use carve_ns as ns;
pub use carve_obs as obs;
pub use carve_sfc as sfc;
