//! The paper stresses that its algorithms are dimension agnostic ("The
//! algorithms presented here are dimension agnostic"); Ishii et al. \[30\]
//! run them in 4D space-time. These tests instantiate the whole core stack
//! at `DIM = 4` (and cross-check `DIM = 2/3` against closed forms).

use carve::core::{
    check_2to1, construct_balanced, construct_boundary_refined, enumerate_nodes,
    traversal_assemble, traversal_matvec,
};
use carve::geom::{CarvedSolids, FullDomain, Sphere};
use carve::la::{CooBuilder, DenseMatrix};
use carve::sfc::{treesort, Curve, Octant};

#[test]
fn uniform_construction_counts_in_2_3_4_dims() {
    let l = 2u8;
    let t2 = carve::core::construct_uniform::<2>(&FullDomain, Curve::Hilbert, l);
    let t3 = carve::core::construct_uniform::<3>(&FullDomain, Curve::Hilbert, l);
    let t4 = carve::core::construct_uniform::<4>(&FullDomain, Curve::Hilbert, l);
    assert_eq!(t2.len(), 16);
    assert_eq!(t3.len(), 64);
    assert_eq!(t4.len(), 256);
}

#[test]
fn hilbert_4d_treesort_matches_comparison_sort() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
    let mut octs: Vec<Octant<4>> = (0..600)
        .map(|_| {
            let mut o = Octant::<4>::ROOT;
            for _ in 0..rng.gen_range(1..5) {
                o = o.child(rng.gen_range(0..16));
            }
            o
        })
        .collect();
    let mut reference = octs.clone();
    treesort(&mut octs, Curve::Hilbert);
    reference.sort_by(|a, b| carve::sfc::sfc_cmp(Curve::Hilbert, a, b));
    assert_eq!(octs, reference);
}

#[test]
fn carved_4d_hypersphere_balances_and_enumerates() {
    // Carve a 4-ball out of the tesseract, balance, enumerate nodes.
    let domain = CarvedSolids::<4>::new(vec![Box::new(Sphere::new([0.5; 4], 0.3))]);
    let adaptive = construct_boundary_refined(&domain, Curve::Morton, 2, 3);
    let tree = construct_balanced(&domain, Curve::Morton, &adaptive);
    check_2to1(&tree).unwrap();
    assert!(!tree.is_empty());
    // Some 4-cells got carved: fewer than the complete count at mixed
    // levels; check measure < 1.
    let vol: f64 = tree
        .iter()
        .map(|o| {
            let s = o.bounds_unit().1;
            s.powi(4)
        })
        .sum();
    assert!(vol < 1.0, "hypersphere must carve volume: {vol}");
    // Nodes enumerate; carved-boundary nodes exist; count sanity.
    let nodes = enumerate_nodes(&domain, &tree, 1);
    assert!(nodes.len() > tree.len() / 2);
    assert!(nodes.flags.iter().any(|f| f.is_carved_boundary()));
}

#[test]
fn traversal_matvec_matches_assembly_in_4d() {
    let domain = CarvedSolids::<4>::new(vec![Box::new(Sphere::new([0.5; 4], 0.35))]);
    let adaptive = construct_boundary_refined(&domain, Curve::Hilbert, 1, 3);
    let elems = construct_balanced(&domain, Curve::Hilbert, &adaptive);
    let nodes = enumerate_nodes(&domain, &elems, 1);
    let n = nodes.len();
    let npe = 16usize;
    let kernel = |e: &Octant<4>, u: &[f64], v: &mut [f64]| {
        let h = e.bounds_unit().1;
        let sum: f64 = u.iter().sum();
        for (i, vi) in v.iter_mut().enumerate() {
            *vi = h * (u[i] + 0.1 * sum);
        }
    };
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut y1 = vec![0.0; n];
    let mut k1 = kernel;
    traversal_matvec(
        &elems,
        0..elems.len(),
        Curve::Hilbert,
        &nodes,
        &x,
        &mut y1,
        &mut k1,
    );
    let mut coo = CooBuilder::new(n);
    let ids: Vec<u32> = (0..n as u32).collect();
    let mut mk = |e: &Octant<4>| {
        let h = e.bounds_unit().1;
        let mut m = DenseMatrix::zeros(npe, npe);
        for i in 0..npe {
            for j in 0..npe {
                m[(i, j)] = h * (if i == j { 1.0 } else { 0.0 } + 0.1);
            }
        }
        m
    };
    traversal_assemble(
        &elems,
        0..elems.len(),
        Curve::Hilbert,
        &nodes,
        &ids,
        &mut coo,
        &mut mk,
    );
    let a = coo.build();
    let mut y2 = vec![0.0; n];
    a.matvec(&x, &mut y2);
    for (i, (a, b)) in y1.iter().zip(&y2).enumerate() {
        assert!(
            (a - b).abs() < 1e-11 * (1.0 + b.abs()),
            "4D mismatch at node {i}: {a} vs {b}"
        );
    }
}

#[test]
fn uniform_4d_node_count_closed_form() {
    let tree = carve::core::construct_uniform::<4>(&FullDomain, Curve::Morton, 2);
    let nodes = enumerate_nodes(&FullDomain, &tree, 1);
    assert_eq!(nodes.len(), 5usize.pow(4));
}
