//! End-to-end integration tests spanning the workspace crates: geometry →
//! incomplete octree → nodes → FEM solve → error, plus the distributed
//! pipeline and the application layer.

use carve::core::{DistMesh, Mesh};
use carve::fem::{l2_linf_error, solve_poisson, BcMode, PoissonProblem, SbmParams};
use carve::geom::{CarvedSolids, RetainBox, RetainSolid, Solid, Sphere};
use carve::ns::{FlowSolver, NodeBc, TransportSolver, VmsParams};
use carve::sfc::{Curve, Octant};

#[test]
fn disk_poisson_sbm_beats_naive_end_to_end() {
    let disk = Sphere::<2>::new([0.5, 0.5], 0.5);
    let domain = RetainSolid::new(disk);
    let one = |_: &[f64; 2]| 1.0;
    let zero = |_: &[f64; 2]| 0.0;
    let closest = move |x: &[f64; 2]| disk.closest_boundary_point(x);
    let exact = |x: &[f64; 2]| {
        let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
        0.25 * (0.25 - r2)
    };
    let mesh = Mesh::build(&domain, Curve::Hilbert, 5, 5, 1);
    let mut errs = Vec::new();
    for bc in [BcMode::Naive, BcMode::Sbm(SbmParams::default())] {
        let prob = PoissonProblem {
            scale: 1.0,
            f: &one,
            dirichlet: &zero,
            closest_boundary: Some(&closest),
            strong_cube_bc: false,
            bc,
        };
        let sol = solve_poisson(&mesh, &domain, &prob);
        assert!(sol.krylov.converged);
        errs.push(l2_linf_error(&mesh, &domain, &sol.u, &exact, 1.0).l2);
    }
    assert!(
        errs[1] < errs[0] / 5.0,
        "SBM ({}) must beat naive ({}) by a clear margin",
        errs[1],
        errs[0]
    );
}

#[test]
fn channel_mesh_counts_match_closed_form() {
    // Channel [0,1]x[0,1/4]x[0,1/4] at uniform level L: 4^? ... elements =
    // 2^L x 2^(L-2) x 2^(L-2); nodes = (2^L+1)(2^(L-2)+1)^2 for p=1.
    for l in [3u8, 4, 5] {
        let domain = RetainBox::<3>::channel([1.0, 0.25, 0.25]);
        let mesh = Mesh::build(&domain, Curve::Morton, l, l, 1);
        let nx = 1usize << l;
        let ny = 1usize << (l - 2);
        assert_eq!(mesh.num_elems(), nx * ny * ny, "level {l}");
        assert_eq!(mesh.num_dofs(), (nx + 1) * (ny + 1) * (ny + 1));
    }
}

#[test]
fn distributed_poisson_matvec_equals_sequential() {
    // The full distributed pipeline with a *real* FEM kernel.
    let seq_mesh = {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.3))]);
        Mesh::build(&domain, Curve::Hilbert, 3, 5, 1)
    };
    let n = seq_mesh.num_dofs();
    // Deterministic input keyed by coordinate.
    let key = |c: &[u64; 2]| {
        let h = c[0].wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(c[1]);
        ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let x: Vec<f64> = (0..n).map(|i| key(&seq_mesh.nodes.coords[i])).collect();
    let mut y_seq = vec![0.0; n];
    let cache = carve::fem::ElementCache::<2>::new(1);
    carve::core::traversal_matvec(
        &seq_mesh.elems,
        0..seq_mesh.elems.len(),
        Curve::Hilbert,
        &seq_mesh.nodes,
        &x,
        &mut y_seq,
        &mut |e: &Octant<2>, u: &[f64], v: &mut [f64]| {
            cache.apply_stiffness_dense(e.bounds_unit().1, u, v);
        },
    );
    let results = carve::comm::run_spmd(3, |comm| {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.3))]);
        let dm = DistMesh::<2>::build(comm, &domain, Curve::Hilbert, 3, 5, 1);
        let x_local: Vec<f64> = (0..dm.nodes.len())
            .map(|i| key(&dm.nodes.coords[i]))
            .collect();
        let mut y = vec![0.0; dm.nodes.len()];
        let cache = carve::fem::ElementCache::<2>::new(1);
        dm.matvec(
            comm,
            &x_local,
            &mut y,
            &mut |e: &Octant<2>, u: &[f64], v: &mut [f64]| {
                cache.apply_stiffness_dense(e.bounds_unit().1, u, v);
            },
        );
        (0..dm.nodes.len())
            .filter(|&i| dm.owner[i] as usize == comm.rank())
            .map(|i| (dm.nodes.coords[i], y[i]))
            .collect::<Vec<_>>()
    });
    let mut seen = 0;
    for per_rank in results {
        for (coord, val) in per_rank {
            let i = seq_mesh.nodes.find(&coord).expect("node exists");
            assert!(
                (val - y_seq[i]).abs() < 1e-10 * (1.0 + y_seq[i].abs()),
                "coord {coord:?}: {val} vs {}",
                y_seq[i]
            );
            seen += 1;
        }
    }
    assert_eq!(seen, n);
}

#[test]
fn classroom_pipeline_smoke() {
    use carve::geom::classroom::ClassroomScene;
    let scene = ClassroomScene::new(false, (0, 0));
    let mesh = Mesh::build(&scene.domain, Curve::Hilbert, 4, 5, 1);
    assert!(mesh.num_elems() > 100);
    // Uniform downward draft as a frozen field; transport a puff.
    let n = mesh.num_dofs();
    let mut vel = vec![0.0; n * 3];
    for i in 0..n {
        vel[i * 3 + 2] = -0.2;
    }
    let bc = |_: &[f64; 3], _: carve::core::NodeFlags| None;
    let mut t = TransportSolver::new(&mesh, &vel, 1e-4, 0.1, scene.scale, &bc);
    let src = scene.source_center;
    let scale = scene.scale;
    let source = move |x: &[f64; 3]| {
        let d2 = (x[0] - src[0] * scale).powi(2)
            + (x[1] - src[1] * scale).powi(2)
            + (x[2] - src[2] * scale).powi(2);
        if d2 < 0.05 {
            1.0
        } else {
            0.0
        }
    };
    for _ in 0..3 {
        let r = t.step(&source);
        assert!(r.converged);
    }
    assert!(t.total_mass() > 0.0);
}

#[test]
fn stokes_flow_in_cavity_is_divergence_free_enough() {
    let domain = RetainBox::<2>::new([0.0, 0.0], [0.5, 0.5]);
    let mesh = Mesh::build(&domain, Curve::Morton, 4, 4, 1);
    let bc = |x: &[f64; 2], _fl: carve::core::NodeFlags| -> NodeBc<2> {
        let eps = 1e-9;
        if x[1] >= 0.5 - eps && x[0] > eps && x[0] < 0.5 - eps {
            NodeBc::Velocity([1.0, 0.0])
        } else if x[0] <= eps || x[0] >= 0.5 - eps || x[1] <= eps || x[1] >= 0.5 - eps {
            if (x[0] - 0.25).abs() < 1e-9 && x[1] <= eps {
                NodeBc::VelocityAndPressure([0.0, 0.0], 0.0)
            } else {
                NodeBc::Velocity([0.0, 0.0])
            }
        } else {
            NodeBc::Free
        }
    };
    let params = VmsParams::new(0.05, 0.5);
    let mut solver = FlowSolver::new(&mesh, params, 1.0, &bc);
    let zero = |_: &[f64; 2]| [0.0, 0.0];
    solver.run_to_steady(&zero, 10, 1e-4);
    // The lid corners are singular (u jumps 1 -> 0), so pointwise divergence
    // is large there; require only that the bulk is sensible and the cavity
    // actually recirculates.
    assert!(
        solver.divergence_l2() < 2.0,
        "div {}",
        solver.divergence_l2()
    );
    let mut min_u = f64::INFINITY;
    for i in 0..mesh.num_dofs() {
        let x = mesh.nodes.unit_coords(i);
        if x[1] < 0.3 && x[0] > 0.1 && x[0] < 0.4 {
            min_u = min_u.min(solver.velocity(i)[0]);
        }
    }
    assert!(min_u < -0.005, "no return flow: {min_u}");
}

#[test]
fn dragon_to_mesh_to_nodes_pipeline() {
    use carve::geom::dragon::{dragon_mesh, DragonParams};
    use carve::geom::TriMeshSolid;
    let params = DragonParams {
        n_spine: 48,
        n_ring: 12,
        ..Default::default()
    };
    let solid = TriMeshSolid::new(dragon_mesh(&params));
    let domain = CarvedSolids::new(vec![Box::new(solid)]);
    let mesh = Mesh::build(&domain, Curve::Hilbert, 3, 5, 1);
    carve::core::check_2to1(&mesh.elems).unwrap();
    assert!(!mesh.intercepted_elems().is_empty());
    // Boundary nodes exist and sit near the surface.
    let nb = mesh
        .nodes
        .flags
        .iter()
        .filter(|f| f.is_carved_boundary())
        .count();
    assert!(nb > 0);
}
