//! Property-based tests over randomized carved geometries, refinement
//! patterns, element orders, and space-filling curves — the invariants
//! DESIGN.md §6 promises.

use carve::baseline::ImmersedMesh;
use carve::core::{
    check_2to1, check_tree_invariants, construct_balanced, construct_boundary_refined,
    traversal_assemble, traversal_matvec, Mesh,
};
use carve::geom::{AxisBox, CarvedSolids, Solid, Sphere, Subdomain};
use carve::la::CooBuilder;
use carve::sfc::{sfc_cmp, treesort, Curve, Octant};
use proptest::prelude::*;

/// Debug-able spec for a random carved geometry (proptest needs `Debug`;
/// `dyn Solid` boxes don't have it).
#[derive(Clone, Debug)]
enum SolidSpec {
    Disk { x: f64, y: f64, r: f64 },
    Box { x: f64, y: f64, w: f64, h: f64 },
}

fn build_domain(specs: &[SolidSpec]) -> CarvedSolids<2> {
    CarvedSolids::new(
        specs
            .iter()
            .map(|s| -> Box<dyn Solid<2>> {
                match *s {
                    SolidSpec::Disk { x, y, r } => Box::new(Sphere::new([x, y], r)),
                    SolidSpec::Box { x, y, w, h } => {
                        Box::new(AxisBox::new([x, y], [(x + w).min(0.95), (y + h).min(0.95)]))
                    }
                }
            })
            .collect(),
    )
}

/// Strategy: a random union of carved disks and boxes in the unit square.
fn arb_domain() -> impl Strategy<Value = Vec<SolidSpec>> {
    let disk = (0.15f64..0.85, 0.15f64..0.85, 0.05f64..0.25)
        .prop_map(|(x, y, r)| SolidSpec::Disk { x, y, r });
    let bx = (0.1f64..0.6, 0.1f64..0.6, 0.05f64..0.3, 0.05f64..0.3)
        .prop_map(|(x, y, w, h)| SolidSpec::Box { x, y, w, h });
    prop::collection::vec(prop_oneof![disk, bx], 1..3)
}

fn arb_curve() -> impl Strategy<Value = Curve> {
    prop_oneof![Just(Curve::Morton), Just(Curve::Hilbert)]
}

fn random_octants(seeds: Vec<(u8, u64)>) -> Vec<Octant<2>> {
    seeds
        .into_iter()
        .map(|(level, path)| {
            let mut o = Octant::<2>::ROOT;
            let mut p = path;
            for _ in 0..level {
                o = o.child((p % 4) as usize);
                p /= 4;
            }
            o
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TreeSort equals comparison sort for any input and either curve.
    #[test]
    fn treesort_is_a_sort(
        seeds in prop::collection::vec((0u8..7, any::<u64>()), 1..200),
        curve in arb_curve(),
    ) {
        let mut a = random_octants(seeds);
        let mut b = a.clone();
        treesort(&mut a, curve);
        b.sort_by(|x, y| sfc_cmp(curve, x, y));
        prop_assert_eq!(a, b);
    }

    /// Construction + balancing invariants hold for random carved domains:
    /// sorted, unique, non-overlapping, no carved leaves, 2:1 balanced,
    /// and balancing is idempotent.
    #[test]
    fn balanced_construction_invariants(
        spec in arb_domain(),
        curve in arb_curve(),
        base in 2u8..4,
        extra in 1u8..3,
    ) {
        let domain = build_domain(&spec);
        let boundary = base + extra;
        let adaptive = construct_boundary_refined(&domain, curve, base, boundary);
        let tree = construct_balanced(&domain, curve, &adaptive);
        prop_assert!(check_tree_invariants(&domain, curve, &tree).is_ok());
        prop_assert!(check_2to1(&tree).is_ok());
        let again = construct_balanced(&domain, curve, &tree);
        prop_assert_eq!(tree, again);
    }

    /// The traversal MATVEC equals the assembled operator AND the
    /// element-to-node-map baseline, for random domains, curves, and both
    /// element orders — three independent implementations of A·x.
    #[test]
    fn three_matvec_implementations_agree(
        spec in arb_domain(),
        curve in arb_curve(),
        order in 1u64..3,
        seed in any::<u64>(),
    ) {
        let domain = build_domain(&spec);
        let mesh = Mesh::build(&domain, curve, 2, 4, order);
        prop_assume!(mesh.num_elems() > 0);
        let n = mesh.num_dofs();
        let kernel_fn = |e: &Octant<2>, u: &[f64], v: &mut [f64]| {
            let h = e.bounds_unit().1;
            let sum: f64 = u.iter().sum();
            for (i, vi) in v.iter_mut().enumerate() {
                *vi = h * h * (2.0 * u[i] + 0.3 * sum);
            }
        };
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // 1: traversal.
        let mut y1 = vec![0.0; n];
        let mut k1 = kernel_fn;
        traversal_matvec(&mesh.elems, 0..mesh.elems.len(), curve, &mesh.nodes, &x, &mut y1, &mut k1);
        // 2: assembled.
        let npe = carve::core::nodes::nodes_per_elem::<2>(order);
        let mut coo = CooBuilder::new(n);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut mk = |e: &Octant<2>| {
            let h = e.bounds_unit().1;
            let mut m = carve::la::DenseMatrix::zeros(npe, npe);
            for i in 0..npe {
                for j in 0..npe {
                    m[(i, j)] = h * h * (if i == j { 2.0 } else { 0.0 } + 0.3);
                }
            }
            m
        };
        traversal_assemble(&mesh.elems, 0..mesh.elems.len(), curve, &mesh.nodes, &ids, &mut coo, &mut mk);
        let a = coo.build();
        let mut y2 = vec![0.0; n];
        a.matvec(&x, &mut y2);
        // 3: e2n baseline over the same carved mesh.
        let baseline = ImmersedMesh::from_mesh(&carve::geom::FullDomain, mesh.clone());
        let mut y3 = vec![0.0; n];
        let mut k3 = kernel_fn;
        baseline.matvec(&x, &mut y3, &mut k3);
        for i in 0..n {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-10 * (1.0 + y2[i].abs()),
                "traversal vs assembled at {}: {} vs {}", i, y1[i], y2[i]);
            prop_assert!((y3[i] - y2[i]).abs() < 1e-10 * (1.0 + y2[i].abs()),
                "e2n vs assembled at {}: {} vs {}", i, y3[i], y2[i]);
        }
    }

    /// Hanging-node interpolation preserves linear fields exactly: the
    /// interpolant of a linear function evaluated at every element lattice
    /// point (through the hanging stencils) matches the function.
    #[test]
    fn hanging_stencils_reproduce_linears(
        spec in arb_domain(),
        curve in arb_curve(),
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        c in -2.0f64..2.0,
    ) {
        let domain = build_domain(&spec);
        let mesh = Mesh::build(&domain, curve, 2, 4, 1);
        prop_assume!(mesh.num_elems() > 0);
        let lin = |x: &[f64; 2]| a * x[0] + b * x[1] + c;
        let u: Vec<f64> = (0..mesh.num_dofs())
            .map(|i| lin(&mesh.nodes.unit_coords(i)))
            .collect();
        for e in &mesh.elems {
            let vals = carve::fem::error::elem_values(&mesh, &u, e);
            let (emin, h) = e.bounds_unit();
            for (idx, v) in vals.iter().enumerate() {
                let x = [
                    emin[0] + h * (idx % 2) as f64,
                    emin[1] + h * (idx / 2) as f64,
                ];
                prop_assert!((v - lin(&x)).abs() < 1e-12,
                    "elem {:?} lattice {}: {} vs {}", e, idx, v, lin(&x));
            }
        }
    }

    /// Carving never loses retained volume: carved + retained element
    /// measures partition the unit square (checked against the domain's
    /// own classification on a fine probe grid).
    #[test]
    fn mesh_covers_exactly_the_retained_region(
        spec in arb_domain(),
        curve in arb_curve(),
    ) {
        let domain = build_domain(&spec);
        let mesh = Mesh::build(&domain, curve, 3, 4, 1);
        // Probe random points: a retained point must be covered by a leaf;
        // a deeply carved point must not.
        for gx in 0..20 {
            for gy in 0..20 {
                let p = [(gx as f64 + 0.5) / 20.0, (gy as f64 + 0.5) / 20.0];
                let scaled = [
                    (p[0] * carve::sfc::octant::ROOT_SIDE as f64) as u64,
                    (p[1] * carve::sfc::octant::ROOT_SIDE as f64) as u64,
                ];
                let cell = carve::sfc::morton::finest_cell_of_point(&scaled);
                let covered = carve::core::find_leaf(&mesh.elems, curve, &cell).is_some();
                let carved = domain.point_in_carved(&p);
                if covered {
                    // Covered points may be in the carved set only within an
                    // intercepted element (staircase band) — can't assert.
                } else {
                    prop_assert!(carved, "uncovered retained point {:?}", p);
                }
            }
        }
    }
}
