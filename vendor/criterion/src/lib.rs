//! Offline stand-in for the subset of the `criterion` API `carve-bench`
//! uses. Each benchmark runs a short warmup, then `sample_size` timed
//! samples, and prints `group/id: median  (min .. max)` to stdout. No
//! statistics machinery, plots, or baselines — just honest wall-clock
//! medians so `cargo bench` keeps producing comparable numbers offline.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier `group/function/parameter` (subset of the real type).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    n_samples: usize,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: aim for samples of at least ~2ms.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        for _ in 0..self.n_samples {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(t.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            n_samples: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut b);
        b.samples.sort();
        if b.samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let median = b.samples[b.samples.len() / 2];
        println!(
            "{}/{}: {:>12?}  ({:?} .. {:?})",
            self.name,
            id,
            median,
            b.samples[0],
            b.samples[b.samples.len() - 1]
        );
    }

    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point (subset of the real `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
