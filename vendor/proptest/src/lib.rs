//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements a real (if small) property-testing harness: composable
//! [`Strategy`] values over ranges, tuples, collections, unions, and maps,
//! plus the `proptest!`/`prop_assert!`/`prop_assume!` macro family. Cases
//! are generated from a fixed seed so runs are reproducible. Shrinking is
//! not implemented — a failing case reports its inputs via `Debug` instead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The RNG driving case generation.
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }

    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.0.gen_range(0..n)
    }
}

/// A generator of values of one type (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy (what `prop_oneof!` stores).
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `s.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty strategy range");
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty strategy range");
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2.0 - 1.0
    }
}

/// Strategy for the whole domain of `T`.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let n = self.size.start + rng.index(span);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// `prop::collection::vec(...)` etc., as the real prelude exposes them.
pub mod prop {
    pub use super::collection;
}

pub mod prelude {
    pub use super::{any, prop, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union { options: vec![$($crate::Strategy::boxed($s)),+] }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed: {:?} != {:?}", lhs, rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err(format!("prop_assert_ne failed: both {:?}", lhs));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::string::String::from(
                "__prop_assume_rejected",
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        // Like the real crate, `#[test]` is the caller's meta — the macro
        // does not add its own (callers always write it, per convention).
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            // Seed derived from the test name so distinct tests explore
            // distinct sequences, reproducibly.
            let mut __seed = 0xcbf2_9ce4_8422_2325u64;
            for b in stringify!($name).bytes() {
                __seed = (__seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut __rng = $crate::TestRng::new(__seed);
            let mut __rejected = 0u32;
            let mut __ran = 0u32;
            while __ran < __cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __out: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __out {
                    ::std::result::Result::Ok(()) => { __ran += 1; }
                    ::std::result::Result::Err(ref e) if e == "__prop_assume_rejected" => {
                        __rejected += 1;
                        if __rejected > 16 * __cfg.cases {
                            panic!("proptest: too many prop_assume rejections");
                        }
                    }
                    ::std::result::Result::Err(e) => {
                        panic!("proptest case {} failed: {}", __ran, e);
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Range strategies stay in bounds and tuples compose.
        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in -1.5f64..2.5, t in (0usize..4, any::<u64>())) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
            prop_assert!(t.0 < 4, "tuple elem 0 out of range: {}", t.0);
        }

        /// Vec + union + map compose; assume filters work.
        #[test]
        fn collections_and_unions(
            v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..10),
            w in (0u8..5).prop_map(|k| k * 2),
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&b| b == 1 || b == 2));
            prop_assert!(w % 2 == 0);
            prop_assert_eq!(w / 2 * 2, w);
        }
    }
}
