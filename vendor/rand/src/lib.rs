//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses (`Rng::gen`, `Rng::gen_range`, `SeedableRng::seed_from_u64`).
//!
//! The build environment has no registry access, so the real crate cannot be
//! fetched; test code only needs *deterministic, seedable* pseudo-randomness,
//! not cryptographic quality. The generator behind [`rngs::SmallRng`] (and
//! the `rand_chacha` shim) is xoshiro256** seeded via splitmix64 — identical
//! sequences for identical seeds on every platform.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

/// Construction from a `u64` seed (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution:
/// floats in `[0, 1)`, the full range for integers, fair coin for `bool`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges a value can be drawn from (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing sampling trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** with splitmix64 seeding — deterministic and fast.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3u8..=9);
            assert!((3..=9).contains(&x));
            let y = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z = r.gen_range(0usize..4);
            assert!(z < 4);
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
