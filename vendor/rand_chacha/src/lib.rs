//! Offline stand-in for `rand_chacha`. Tests in this workspace only rely on
//! `ChaCha8Rng` being a *deterministic seedable* generator, not on the
//! actual ChaCha stream cipher, so this re-badges the xoshiro-based
//! [`rand::rngs::SmallRng`] under the expected type name.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Deterministic seedable RNG under the name test code expects.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng(SmallRng);

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        ChaCha8Rng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Same stand-in, under the ChaCha12 name.
pub type ChaCha12Rng = ChaCha8Rng;
/// Same stand-in, under the ChaCha20 name.
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seedable_and_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        let xs: Vec<f64> = (0..10).map(|_| a.gen_range(-1.0..1.0)).collect();
        let ys: Vec<f64> = (0..10).map(|_| b.gen_range(-1.0..1.0)).collect();
        assert_eq!(xs, ys);
    }
}
